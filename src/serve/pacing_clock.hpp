// Real-time pacing for the live broker (DESIGN.md §9).
//
// The discrete-event engine has no opinion about wall time: it executes the
// next (t, priority, seq) minimum whenever asked. Service mode wants the
// opposite — a completion at sim time t must settle when the wall clock
// *reaches* t, and a bid that arrives now must be stamped with the current
// sim time. A PacingClock is the mapping between the two: it reports the
// current sim time and can block the engine thread until a given sim time is
// due (or the service is poked for another reason).
//
// The clock is injectable. The production WallPacingClock maps monotonic
// wall time onto sim time through a scale factor; the VirtualPacingClock is
// driven by explicit advance() calls so tests run the whole serve stack at
// simulated speed, deterministically, in microseconds of real time.
//
// Contract (what BrokerService relies on):
//  - now() is monotone non-decreasing, including across threads whose calls
//    are ordered by a mutex: if A's now() happens-before B's now(), then
//    A's reading <= B's reading. The service stamps bid arrivals and pump
//    boundaries under one mutex, and this property is what keeps every
//    stamp >= every earlier boundary (so the engine never schedules into
//    its own past).
//  - wait_until(cv, lk, t) blocks the caller on `cv` (releasing `lk`, the
//    service mutex) until roughly sim time t is due or the cv is notified.
//    Spurious wakeups are allowed and expected: the caller re-checks its
//    predicates and re-waits.
//  - wait(cv, lk) blocks until the cv is notified (used when nothing is
//    pending, so no sim deadline exists).
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>

namespace mbts {

class PacingClock {
 public:
  virtual ~PacingClock() = default;

  /// Current sim time (monotone; see file comment).
  virtual double now() = 0;

  /// Blocks on `cv` until sim time `t` is due or the cv is notified.
  /// `lk` must hold the same mutex the notifier uses.
  virtual void wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lk, double t) = 0;

  /// Blocks on `cv` until notified (no sim deadline pending).
  virtual void wait(std::condition_variable& cv,
                    std::unique_lock<std::mutex>& lk) = 0;
};

/// Production clock: sim time = scale * (monotonic wall seconds since
/// construction). scale = 1 serves in real time; scale = 60 compresses a
/// simulated minute into a wall second (useful for demos and smoke tests).
class WallPacingClock : public PacingClock {
 public:
  explicit WallPacingClock(double scale = 1.0);

  double now() override;
  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk, double t) override;
  void wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;

 private:
  using Clock = std::chrono::steady_clock;
  const Clock::time_point epoch_;
  const double scale_;
  // steady_clock is monotone per thread; folding every reading through
  // last_ makes the cross-thread monotonicity the service relies on a
  // guarantee instead of a platform property.
  std::mutex m_;
  double last_ = 0.0;
};

/// Test clock: sim time moves only through advance(). A waiter blocked in
/// wait/wait_until is woken by advance(), so a test can submit bids, move
/// time past the expected completions, and observe settlement — all
/// deterministically.
class VirtualPacingClock : public PacingClock {
 public:
  double now() override;

  /// Moves sim time forward by dt (>= 0) and wakes any registered waiter.
  void advance(double dt);

  void wait_until(std::condition_variable& cv,
                  std::unique_lock<std::mutex>& lk, double t) override;
  void wait(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lk) override;

 private:
  /// Registers the caller as the waiter, re-checks `t` against the clock
  /// (an advance() between the caller's predicate check and registration
  /// must not be lost), then waits once. t < 0 means "no deadline".
  void wait_impl(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                 double t);

  std::mutex m_;
  double t_ = 0.0;
  // At most one waiter: the service's engine thread. The waiter's cv and
  // mutex are registered while it sleeps so advance() can perform the
  // mutex-bridge notify (lock-unlock the waiter's mutex, then notify) that
  // closes the classic lost-wakeup window.
  std::condition_variable* waiter_cv_ = nullptr;
  std::mutex* waiter_mu_ = nullptr;
};

}  // namespace mbts
