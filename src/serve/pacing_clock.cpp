#include "serve/pacing_clock.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mbts {

WallPacingClock::WallPacingClock(double scale)
    : epoch_(Clock::now()), scale_(scale) {
  MBTS_CHECK_MSG(scale > 0.0, "pacing scale must be positive");
}

double WallPacingClock::now() {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - epoch_).count();
  const double t = elapsed * scale_;
  std::lock_guard<std::mutex> lock(m_);
  last_ = std::max(last_, t);
  return last_;
}

void WallPacingClock::wait_until(std::condition_variable& cv,
                                 std::unique_lock<std::mutex>& lk, double t) {
  // Wake strictly *past* the deadline: the service pumps events strictly
  // before its boundary, so waking at exactly t would leave the due event
  // on the (t, >= kArrival) side of the boundary and spin. A fraction of a
  // millisecond of pad is far below any pacing fidelity a wall clock can
  // promise anyway.
  const double wall_seconds = t / scale_ + 200e-6;
  cv.wait_until(lk, epoch_ + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(wall_seconds)));
}

void WallPacingClock::wait(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk) {
  cv.wait(lk);
}

double VirtualPacingClock::now() {
  std::lock_guard<std::mutex> lock(m_);
  return t_;
}

void VirtualPacingClock::advance(double dt) {
  MBTS_CHECK_MSG(dt >= 0.0, "virtual clock cannot run backwards");
  std::condition_variable* cv = nullptr;
  std::mutex* mu = nullptr;
  {
    std::lock_guard<std::mutex> lock(m_);
    t_ += dt;
    cv = waiter_cv_;
    mu = waiter_mu_;
  }
  if (cv == nullptr) return;
  // Mutex bridge: the waiter registered under m_ while still holding its
  // own mutex, then released it inside cv.wait. Acquiring and releasing
  // that mutex here orders this notify after the waiter is actually
  // parked, so the wakeup cannot fall into the gap between its predicate
  // check and the wait. Lock order is always service-mutex -> m_ on the
  // waiter side and m_ -> (drop) -> service-mutex here, so no cycle.
  { std::lock_guard<std::mutex> bridge(*mu); }
  cv->notify_all();
}

void VirtualPacingClock::wait_impl(std::condition_variable& cv,
                                   std::unique_lock<std::mutex>& lk,
                                   double t) {
  {
    std::lock_guard<std::mutex> lock(m_);
    MBTS_CHECK_MSG(waiter_cv_ == nullptr || waiter_cv_ == &cv,
                   "VirtualPacingClock supports a single waiter");
    waiter_cv_ = &cv;
    waiter_mu_ = lk.mutex();
    // An advance() that slipped in after the caller's predicate check but
    // before registration would otherwise be lost; with a deadline, the
    // wait is already satisfied.
    if (t >= 0.0 && t_ >= t) {
      waiter_cv_ = nullptr;
      waiter_mu_ = nullptr;
      return;
    }
  }
  cv.wait(lk);
  std::lock_guard<std::mutex> lock(m_);
  waiter_cv_ = nullptr;
  waiter_mu_ = nullptr;
}

void VirtualPacingClock::wait_until(std::condition_variable& cv,
                                    std::unique_lock<std::mutex>& lk,
                                    double t) {
  wait_impl(cv, lk, t);
}

void VirtualPacingClock::wait(std::condition_variable& cv,
                              std::unique_lock<std::mutex>& lk) {
  wait_impl(cv, lk, -1.0);
}

}  // namespace mbts
