#include "serve/preset.hpp"

namespace mbts {
namespace serve {

MarketConfig fig1_market(std::uint64_t seed) {
  MarketConfig config;
  config.rng_seed = seed;
  auto site = [](SiteId id, const char* name, std::size_t procs,
                 PolicySpec policy, bool admission, double threshold) {
    SiteAgentConfig sc;
    sc.id = id;
    sc.name = name;
    sc.scheduler.processors = procs;
    sc.scheduler.preemption = true;
    sc.scheduler.discount_rate = 0.01;
    sc.policy = policy;
    sc.use_slack_admission = admission;
    sc.admission.threshold = threshold;
    return sc;
  };
  config.sites.push_back(site(0, "big-conservative", 24,
                              PolicySpec::first_reward(0.2), true, 300.0));
  config.sites.push_back(site(1, "mid-aggressive", 12,
                              PolicySpec::first_reward(0.8), true, 0.0));
  config.sites.push_back(
      site(2, "small-cost-only", 6, PolicySpec::swpt(), false, 0.0));
  return config;
}

}  // namespace serve
}  // namespace mbts
