// The live admission path of service mode (DESIGN.md §9).
//
// BrokerService wraps one single-engine, fault-free Market behind a bounded
// admission queue and a dedicated engine thread, turning the batch economy
// into a request/response broker:
//
//   session threads            engine thread (owns Market + SimEngine)
//   --------------             ------------------------------------------
//   submit(bid) ----------->   pop a *run* of queued bids in one lock
//     stamp arrival a           acquisition; for each, in queue order:
//     assign task id             pump events strictly before (a, kArrival)
//     callback or future          Market::submit_bid -> SimEngine::step()
//                                fulfill callback/promise from the result
//                              idle: pump to clock.now(), sleep until the
//                              next event is due or a submit arrives
//
// Batched admission: the engine thread pops every consecutive bid at the
// queue front under a single lock acquisition and negotiates the run
// back-to-back. The per-bid work — pump to the bid's own stamp, submit,
// step — is exactly what the one-at-a-time loop did, in the same stamp/id
// order, so invariants 1-2 below are untouched; only the lock/wakeup
// round trips between bids are gone. A STATS control entry never joins a
// run (it is popped alone, and its pump still caps at the earliest queued
// bid's stamp).
//
// Bit-identity contract: the drained service's MarketStats are bit-identical
// to a batch Market::run() over admitted_trace() with the same MarketConfig.
// Three invariants carry it:
//   1. Arrival stamps and task ids are assigned under the queue mutex, both
//      monotone, so queue order == arrival order == id order — exactly the
//      stream inject() would schedule.
//   2. The engine only ever executes events strictly before the stamp of
//      the next bid: idle pumps fold the boundary into the stamp floor with
//      an empty queue, and stats pumps cap at the earliest queued bid's
//      stamp, so each live bid executes against exactly the prefix the
//      batch run would have executed before it.
//   3. At drain the engine runs dry and collect_stats() assembles the same
//      totals run() would. Nothing in the fingerprint depends on the final
//      clock, which is the one place serve and batch histories differ.
//
// Thread safety: MetricsRegistry and Market are touched by the engine
// thread only. Session threads see the queue, the counters under mu_, and
// their futures. STATS requests ride the same queue as control entries so
// even the metrics snapshot is engine-thread work.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "market/market.hpp"
#include "obs/metrics.hpp"
#include "serve/pacing_clock.hpp"
#include "workload/trace.hpp"

namespace mbts {
namespace serve {

struct ServeConfig {
  /// The economy to serve. Must be single-engine (shards <= 1) and
  /// fault-free — the live pump does not support the sharded loop or the
  /// fault-arming preamble (Market::submit_bid checks).
  MarketConfig market;
  /// Bids queued but not yet negotiated before submit() rejects with
  /// kQueueFull. Control entries (STATS) are exempt.
  std::size_t queue_capacity = 256;
  /// Base retry-after hint (sim seconds) for a kQueueFull rejection. The
  /// returned hint scales with the actual backlog:
  ///   hint = retry_after * (queued + in-flight) / queue_capacity
  /// so a client rejected while a deep popped run is still negotiating is
  /// told to back off proportionally longer than one rejected at the bare
  /// capacity edge (where the ratio is 1 and the hint equals the base).
  double retry_after = 1.0;
  /// Test hook: stall the engine thread this long before each negotiation,
  /// so load tests can force the admission queue full deterministically.
  std::chrono::milliseconds process_stall{0};
};

/// Final result of one live bid.
struct Outcome {
  TaskId task = kInvalidTask;
  bool awarded = false;
  SiteId site = 0;
  double expected_completion = 0.0;
  double agreed_price = 0.0;
};

class BrokerService {
 public:
  enum class SubmitStatus { kQueued, kQueueFull, kDraining };

  /// External counters a caller (the TCP server) folds into STATS
  /// snapshots; written as gauges named as given.
  using ExternalGauges = std::vector<std::pair<std::string, double>>;

  /// `clock` is not owned and must outlive the service.
  BrokerService(ServeConfig config, PacingClock* clock);
  ~BrokerService();

  BrokerService(const BrokerService&) = delete;
  BrokerService& operator=(const BrokerService&) = delete;

  /// Spawns the engine thread. Entries submitted before start() simply
  /// queue up (deterministic backpressure tests rely on this).
  void start();

  /// Invoked on the engine thread once the bid's negotiation resolves (or,
  /// for every still-queued bid, during the drain). Must not block: the
  /// reactor front end posts the outcome to a completion queue and returns.
  using OutcomeCallback = std::function<void(const Outcome&)>;

  /// Admission: stamps the bid with the current sim time, assigns its task
  /// id, and queues it for negotiation. On kQueued, `*outcome` is a future
  /// the engine thread fulfills. On kQueueFull, `*retry_after` (if non-null)
  /// carries the depth-scaled hint. On kDraining nothing is queued.
  SubmitStatus submit(const Task& task, std::future<Outcome>* outcome,
                      double* retry_after = nullptr);

  /// Callback flavor of submit(): on kQueued the engine thread invokes
  /// `on_outcome` instead of parking a future — the pipelined front end's
  /// path, where no thread may block per bid. On kQueueFull/kDraining the
  /// callback is dropped unused (the caller answers BUSY/DRAINING itself).
  SubmitStatus submit(const Task& task, OutcomeCallback on_outcome,
                      double* retry_after = nullptr);

  /// Metrics snapshot as CSV, taken by the engine thread after pumping all
  /// events due at the current sim time ("stats as of now"). `extra` is
  /// written as gauges before the dump. Requires a started service; returns
  /// "" once draining (callers answer DRAINING).
  std::string stats_csv(const ExternalGauges& extra = {});

  /// Non-blocking flavor: the snapshot rides the queue and `on_csv` runs on
  /// the engine thread with the CSV — except once draining, where it runs
  /// inline on the caller with "" (callers answer DRAINING). The reactor
  /// front end uses this so a STATS request never parks a reactor thread.
  void stats_csv_async(const ExternalGauges& extra,
                       std::function<void(std::string)> on_csv);

  /// Graceful drain: stop admitting, let the engine thread negotiate every
  /// queued bid, run the engine dry (settling all open contracts), snapshot
  /// metrics, join the thread, and return the final stats. Idempotent and
  /// safe to call concurrently (callers serialize and all return the same
  /// stats); subsequent submits return kDraining.
  MarketStats drain(const ExternalGauges& extra = {});

  /// The admitted bid stream, in negotiation order with the stamped
  /// arrivals and assigned ids. Replaying it through a batch Market::run()
  /// with the same MarketConfig reproduces drain()'s stats bit-for-bit.
  /// Valid after drain().
  const Trace& admitted_trace() const;

  /// Final metrics CSV (same registry STATS dumps). Valid after drain().
  std::string final_metrics_csv() const;

  /// Counters (any thread).
  std::uint64_t admitted() const;
  std::uint64_t rejected_backpressure() const;
  std::uint64_t rejected_draining() const;
  /// Live backlog: bids queued but not yet popped for negotiation.
  std::size_t queue_depth() const;
  /// High-water mark of queue_depth() since start.
  std::size_t peak_queue_depth() const;
  /// Bids popped in the current run and not yet negotiated.
  std::size_t inflight_bids() const;
  /// Runs of consecutive bids popped in one lock acquisition, and the bids
  /// they carried (batched admission telemetry; batches/bids gives the
  /// mean run length).
  std::uint64_t admission_batches() const;
  std::uint64_t batched_bids() const;

  bool draining() const;

 private:
  struct Entry {
    enum class Kind { kBid, kStats } kind = Kind::kBid;
    Bid bid;
    /// Exactly one of the two outcome channels is armed per bid entry.
    std::optional<std::promise<Outcome>> outcome;
    OutcomeCallback on_outcome;
    std::function<void(std::string)> on_text;
    ExternalGauges external;
    std::chrono::steady_clock::time_point enqueued;
  };

  void engine_loop();
  /// Shared admission tail of both submit() flavors.
  SubmitStatus submit_entry(const Task& task, Entry&& entry,
                            double* retry_after);
  /// Executes one live negotiation (invariant 2 of the file comment).
  void process_bid(Entry& entry);
  /// Pumps every event strictly before (boundary, kArrival).
  void pump_strictly_before(double boundary);
  /// Engine thread: writes counters/gauges into the registry and dumps CSV.
  std::string snapshot_metrics(const ExternalGauges& extra);

  const ServeConfig config_;
  PacingClock* const clock_;
  std::unique_ptr<Market> market_;
  // Engine-thread-only (after start): the registry and the admitted trace
  // are also read by the caller after drain() joins the thread.
  MetricsRegistry metrics_;
  /// Cached &metrics_.histogram(...) — registry references are stable, so
  /// the per-bid latency sample skips the by-name lookup.
  Histogram* latency_hist_ = nullptr;
  Trace admitted_;
  std::uint64_t last_counted_admitted_ = 0;
  std::uint64_t last_counted_bp_ = 0;
  std::uint64_t last_counted_draining_ = 0;
  std::uint64_t last_counted_batches_ = 0;
  std::uint64_t last_counted_batched_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  std::size_t queued_bids_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::size_t inflight_bids_ = 0;
  std::uint64_t admission_batches_ = 0;
  std::uint64_t batched_bids_ = 0;
  bool draining_ = false;
  ExternalGauges drain_extra_;
  double last_stamp_ = 0.0;
  TaskId next_task_id_ = 1;
  std::uint64_t admitted_count_ = 0;
  std::uint64_t rejected_backpressure_ = 0;
  std::uint64_t rejected_draining_ = 0;

  /// Serializes the join/collect step of drain() across concurrent callers.
  std::mutex drain_mu_;
  std::thread engine_thread_;
  bool started_ = false;
  bool drained_ = false;
  MarketStats final_stats_;
};

}  // namespace serve
}  // namespace mbts
