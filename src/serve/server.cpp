#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace mbts {
namespace serve {

namespace {

/// Sends the whole buffer; MSG_NOSIGNAL turns a dead peer into an error
/// return instead of SIGPIPE. Returns false when the peer is gone.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

ServeServer::ServeServer(ServerConfig config, BrokerService* service)
    : config_(std::move(config)), service_(service) {
  MBTS_CHECK_MSG(service_ != nullptr, "ServeServer needs a BrokerService");
}

ServeServer::~ServeServer() {
  if (started_) stop();
}

void ServeServer::start() {
  MBTS_CHECK_MSG(!started_, "ServeServer already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MBTS_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  MBTS_CHECK_MSG(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "invalid bind address: " + config_.bind_address);
  MBTS_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind failed on " + config_.bind_address + ":" +
                     std::to_string(config_.port));
  MBTS_CHECK_MSG(::listen(listen_fd_, 64) == 0, "listen failed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  MBTS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0);
  port_ = ntohs(bound.sin_port);
  MBTS_CHECK_MSG(::pipe(wake_pipe_) == 0, "pipe failed");
  sessions_ = std::make_unique<ThreadPool>(config_.session_threads);
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::stop() {
  MBTS_CHECK_MSG(started_, "stop before start");
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  // Wake the accept loop's poll; closing the listen socket alone is not a
  // portable wakeup.
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Joining the pool waits for every live session to notice stopping_ (one
  // poll slice at most) and close its connection.
  sessions_.reset();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

BrokerService::ExternalGauges ServeServer::external_gauges() const {
  return {
      {"serve/sessions_opened", static_cast<double>(sessions_opened_.load())},
      {"serve/sessions_idle_evicted",
       static_cast<double>(idle_evicted_.load())},
      {"serve/protocol_errors", static_cast<double>(protocol_errors_.load())},
  };
}

void ServeServer::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++sessions_opened_;
    sessions_->submit([this, fd] { session(fd); });
  }
}

void ServeServer::session(int fd) {
  using Clock = std::chrono::steady_clock;
  std::string buffer;
  std::size_t line_no = 0;
  Clock::time_point last_activity = Clock::now();
  bool open = true;
  while (open) {
    if (stopping_.load()) break;
    pollfd pfd{fd, POLLIN, 0};
    // Short slices: each timeout re-checks shutdown and the idle deadline.
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (config_.idle_timeout_s > 0.0 &&
          std::chrono::duration<double>(Clock::now() - last_activity)
                  .count() > config_.idle_timeout_s) {
        ++idle_evicted_;
        send_all(fd, "TIMEOUT idle\n");
        break;
      }
      continue;
    }
    char chunk[2048];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or hard error
    }
    last_activity = Clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > config_.max_line &&
        buffer.find('\n') == std::string::npos) {
      ++protocol_errors_;
      send_all(fd, "ERR line too long\n");
      break;
    }
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      ++line_no;
      open = handle_line(fd, line, line_no);
    }
  }
  ::close(fd);
}

bool ServeServer::handle_line(int fd, const std::string& line,
                              std::size_t line_no) {
  if (line.empty()) return true;  // blank lines are keepalive noise
  Request request;
  std::string error;
  if (!parse_request(line, &request, &error)) {
    ++protocol_errors_;
    return send_all(fd,
                    "ERR line " + std::to_string(line_no) + " " + error +
                        "\n");
  }
  switch (request.verb) {
    case Verb::kPing:
      return send_all(fd, "PONG\n");
    case Verb::kQuit:
      send_all(fd, "BYE\n");
      return false;
    case Verb::kStats: {
      // stats_csv() answers "" once the service is draining; the protocol
      // reply for that is DRAINING, not a bare END sentinel.
      const std::string csv = service_->stats_csv(external_gauges());
      if (csv.empty()) return send_all(fd, "DRAINING\n");
      return send_all(fd, csv + "END\n");
    }
    case Verb::kBid:
      break;
  }
  if (stopping_.load()) return send_all(fd, "DRAINING\n");
  std::future<Outcome> outcome;
  double retry_after = 0.0;
  switch (service_->submit(bid_task(request), &outcome, &retry_after)) {
    case BrokerService::SubmitStatus::kDraining:
      return send_all(fd, "DRAINING\n");
    case BrokerService::SubmitStatus::kQueueFull:
      return send_all(fd, "BUSY " + format_double(retry_after) + "\n");
    case BrokerService::SubmitStatus::kQueued:
      break;
  }
  const Outcome result = outcome.get();
  if (!result.awarded)
    return send_all(fd, "REJECT " + std::to_string(result.task) + "\n");
  return send_all(fd, "AWARD " + std::to_string(result.task) + " " +
                          std::to_string(result.site) + " " +
                          format_double(result.expected_completion) + " " +
                          format_double(result.agreed_price) + "\n");
}

}  // namespace serve
}  // namespace mbts
