#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace mbts {
namespace serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MBTS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  MBTS_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// The one-line reply for a resolved bid; `tag` is echoed when non-empty.
/// Built on the engine thread so the reactor only ships bytes.
std::string format_outcome(const std::string& tag, const Outcome& outcome) {
  const std::string prefix = tag.empty() ? "" : tag + " ";
  if (!outcome.awarded)
    return "REJECT " + prefix + std::to_string(outcome.task) + "\n";
  return "AWARD " + prefix + std::to_string(outcome.task) + " " +
         std::to_string(outcome.site) + " " +
         format_double(outcome.expected_completion) + " " +
         format_double(outcome.agreed_price) + "\n";
}

}  // namespace

/// A reply produced off the reactor thread (engine completions, async STATS)
/// addressed by connection id — never by pointer, so a session that died
/// first just drops its reply.
struct ServeServer::Completion {
  std::uint64_t conn = 0;
  std::string text;
  /// Non-empty: the tagged bid this answers (cleared from the in-flight set).
  std::string tag;
  /// An untagged bid or STATS was answered: resume parsing the connection.
  bool end_lockstep = false;
};

/// The cross-thread mailbox of one reactor. Engine-thread callbacks hold it
/// by shared_ptr; once the reactor tears down it nulls `poller` under the
/// lock and late posts become no-ops, so completions arriving after stop()
/// (the service drains afterwards) touch nothing freed.
struct ServeServer::Inbox {
  std::mutex mu;
  std::vector<Completion> items;
  std::vector<int> adopted_fds;
  Poller* poller = nullptr;

  void post(Completion&& completion) {
    std::lock_guard<std::mutex> lock(mu);
    if (poller == nullptr) return;  // reactor already gone; drop the reply
    // Wake only on the empty->nonempty edge: the reactor drains the whole
    // inbox per pass, so completions stacking up behind the first need no
    // further self-pipe writes. Under a batched admission run this
    // collapses one wake syscall per bid into ~one per drain cycle.
    const bool was_idle = items.empty() && adopted_fds.empty();
    items.push_back(std::move(completion));
    if (was_idle) poller->wake();
  }

  /// Hands a freshly accepted fd to this reactor; closes it when the
  /// reactor is already gone.
  void post_fd(int fd) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (poller != nullptr) {
        const bool was_idle = items.empty() && adopted_fds.empty();
        adopted_fds.push_back(fd);
        if (was_idle) poller->wake();
        return;
      }
    }
    ::close(fd);
  }
};

struct ServeServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  /// Read assembly: unparsed bytes are [rpos, rbuf.size()).
  std::string rbuf;
  std::size_t rpos = 0;
  /// Bounded write queue: unsent bytes are [woff, wbuf.size()).
  std::string wbuf;
  std::size_t woff = 0;
  std::size_t line_no = 0;
  std::chrono::steady_clock::time_point last_activity;
  /// Tags submitted and not yet answered (pipelined bids).
  std::unordered_set<std::string> inflight_tags;
  /// An untagged bid or STATS awaits its reply: parsing is stalled and,
  /// once a spare line of input is buffered, reads pause too — the kernel
  /// socket buffer backpressures a lockstep client that runs ahead.
  bool lockstep_wait = false;
  /// QUIT seen with tags still in flight: BYE goes out after the last one.
  bool quit_pending = false;
  /// Farewell queued: flush the write queue, then close.
  bool closing = false;
  /// Mirror of the interests registered with the poller.
  bool want_read = true;
  bool want_write = false;
  /// Inside a drain_inbox burst: replies accumulate and flush once at the
  /// end of the pass (one send(2) per connection per burst).
  bool corked = false;
};

struct ServeServer::Reactor {
  explicit Reactor(PollerBackend backend) : poller(backend) {}

  std::size_t index = 0;
  Poller poller;
  std::shared_ptr<Inbox> inbox;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;  // keyed by fd
  std::unordered_map<std::uint64_t, Conn*> by_id;
  std::thread thread;
};

ServeServer::ServeServer(ServerConfig config, BrokerService* service)
    : config_(std::move(config)), service_(service) {
  MBTS_CHECK_MSG(service_ != nullptr, "ServeServer needs a BrokerService");
}

ServeServer::~ServeServer() {
  if (started_) stop();
}

void ServeServer::start() {
  MBTS_CHECK_MSG(!started_, "ServeServer already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MBTS_CHECK_MSG(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  MBTS_CHECK_MSG(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "invalid bind address: " + config_.bind_address);
  MBTS_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind failed on " + config_.bind_address + ":" +
                     std::to_string(config_.port));
  MBTS_CHECK_MSG(::listen(listen_fd_, 256) == 0, "listen failed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  MBTS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                           &len) == 0);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  const std::size_t threads = std::max<std::size_t>(1, config_.session_threads);
  const PollerBackend backend = config_.force_poll_backend
                                    ? PollerBackend::kPoll
                                    : PollerBackend::kAuto;
  for (std::size_t i = 0; i < threads; ++i) {
    auto reactor = std::make_unique<Reactor>(backend);
    reactor->index = i;
    reactor->inbox = std::make_shared<Inbox>();
    reactor->inbox->poller = &reactor->poller;
    reactors_.push_back(std::move(reactor));
  }
  // Reactor 0 doubles as the acceptor; new connections are dealt round-robin.
  reactors_[0]->poller.add(listen_fd_, true, false);
  started_ = true;
  for (auto& reactor : reactors_) {
    Reactor* raw = reactor.get();
    reactor->thread = std::thread([this, raw] { reactor_loop(*raw); });
  }
}

void ServeServer::stop() {
  MBTS_CHECK_MSG(started_, "stop before start");
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);
  for (auto& reactor : reactors_) {
    std::lock_guard<std::mutex> lock(reactor->inbox->mu);
    if (reactor->inbox->poller != nullptr) reactor->inbox->poller->wake();
  }
  for (auto& reactor : reactors_) reactor->thread.join();
  // Inboxes outlive the reactors via the callbacks' shared_ptrs; their
  // poller pointers were nulled by the loop teardown, so late engine
  // completions post into the void instead of a freed Poller.
  reactors_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

BrokerService::ExternalGauges ServeServer::external_gauges() const {
  return {
      {"serve/sessions_opened", static_cast<double>(sessions_opened_.load())},
      {"serve/sessions_idle_evicted",
       static_cast<double>(idle_evicted_.load())},
      {"serve/protocol_errors", static_cast<double>(protocol_errors_.load())},
      {"serve/sessions_overflow_evicted",
       static_cast<double>(overflow_evicted_.load())},
      {"serve/write_backpressure_events",
       static_cast<double>(write_backpressure_.load())},
  };
}

void ServeServer::reactor_loop(Reactor& reactor) {
  std::vector<PollEvent> events;
  while (!stopping_.load()) {
    // Short slices: each timeout re-checks shutdown and the idle deadline.
    reactor.poller.wait(200, &events);
    if (stopping_.load()) break;
    drain_inbox(reactor);
    for (const PollEvent& event : events) {
      if (event.fd == listen_fd_) {
        accept_ready(reactor);
        continue;
      }
      auto it = reactor.conns.find(event.fd);
      if (it == reactor.conns.end()) continue;  // destroyed earlier in batch
      Conn& conn = *it->second;
      if (event.error) {
        destroy(reactor, conn);
        continue;
      }
      if (event.readable) on_readable(reactor, conn);  // may destroy conn
      if (event.writable) {
        auto again = reactor.conns.find(event.fd);
        if (again != reactor.conns.end()) on_writable(reactor, *again->second);
      }
    }
    sweep_idle(reactor);
  }
  // Teardown: detach from the inbox first so concurrent posts become no-ops,
  // then close everything this reactor owns.
  {
    std::lock_guard<std::mutex> lock(reactor.inbox->mu);
    reactor.inbox->poller = nullptr;
    reactor.inbox->items.clear();
    for (const int fd : reactor.inbox->adopted_fds) ::close(fd);
    reactor.inbox->adopted_fds.clear();
  }
  for (const auto& entry : reactor.conns) ::close(entry.first);
  reactor.by_id.clear();
  reactor.conns.clear();
}

void ServeServer::accept_ready(Reactor& reactor) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN: drained the backlog
    }
    set_nonblocking(fd);
    // Replies are single small lines; without TCP_NODELAY a lockstep client
    // would eat Nagle-delayed round trips.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf,
                   sizeof(config_.sndbuf));
    ++sessions_opened_;
    Reactor& target = *reactors_[next_reactor_++ % reactors_.size()];
    if (&target == &reactor)
      adopt_fd(reactor, fd);
    else
      target.inbox->post_fd(fd);
  }
}

void ServeServer::adopt_fd(Reactor& reactor, int fd) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1);
  conn->last_activity = std::chrono::steady_clock::now();
  reactor.poller.add(fd, true, false);
  reactor.by_id[conn->id] = conn.get();
  reactor.conns[fd] = std::move(conn);
}

void ServeServer::drain_inbox(Reactor& reactor) {
  std::vector<Completion> items;
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(reactor.inbox->mu);
    items.swap(reactor.inbox->items);
    adopted.swap(reactor.inbox->adopted_fds);
  }
  for (const int fd : adopted) adopt_fd(reactor, fd);
  // Cork while applying: a batched admission run posts a burst of
  // completions for the same few connections, and sending each reply
  // individually costs a send(2) per bid. Replies accumulate in the write
  // buffers here and every touched connection flushes once below.
  std::vector<std::uint64_t> corked;
  for (Completion& completion : items) {
    auto it = reactor.by_id.find(completion.conn);
    if (it != reactor.by_id.end() && !it->second->corked) {
      it->second->corked = true;
      corked.push_back(completion.conn);
    }
    apply_completion(reactor, completion);
  }
  for (const std::uint64_t id : corked) {
    auto it = reactor.by_id.find(id);
    if (it == reactor.by_id.end()) continue;  // destroyed while corked
    Conn& conn = *it->second;
    conn.corked = false;
    if (conn.woff < conn.wbuf.size() || conn.closing) flush(reactor, conn);
  }
}

void ServeServer::apply_completion(Reactor& reactor, Completion& completion) {
  auto it = reactor.by_id.find(completion.conn);
  if (it == reactor.by_id.end()) return;  // session died before its reply
  Conn& conn = *it->second;
  if (!completion.tag.empty()) conn.inflight_tags.erase(completion.tag);
  if (completion.end_lockstep) conn.lockstep_wait = false;
  if (!queue_reply(reactor, conn, completion.text)) return;
  if (conn.quit_pending && conn.inflight_tags.empty()) {
    conn.quit_pending = false;
    send_farewell(reactor, conn, "BYE\n");
    return;
  }
  if (completion.end_lockstep)
    parse_input(reactor, conn);  // resume any input queued behind the wait
  else
    update_read_interest(reactor, conn);
}

void ServeServer::on_readable(Reactor& reactor, Conn& conn) {
  const int fd = conn.fd;
  for (;;) {
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      destroy(reactor, conn);
      return;
    }
    if (n == 0) {  // peer closed
      destroy(reactor, conn);
      return;
    }
    conn.last_activity = std::chrono::steady_clock::now();
    conn.rbuf.append(chunk, static_cast<std::size_t>(n));
    parse_input(reactor, conn);  // may destroy conn
    if (reactor.conns.find(fd) == reactor.conns.end()) return;
    if (!conn.want_read) return;  // paused (stalled backlog) or closing
    if (static_cast<std::size_t>(n) < sizeof(chunk)) break;  // drained
  }
}

void ServeServer::on_writable(Reactor& reactor, Conn& conn) {
  flush(reactor, conn);
}

void ServeServer::parse_input(Reactor& reactor, Conn& conn) {
  const int fd = conn.fd;
  while (!conn.closing && !conn.quit_pending && !conn.lockstep_wait) {
    const std::size_t newline = conn.rbuf.find('\n', conn.rpos);
    if (newline == std::string::npos) break;
    std::string line = conn.rbuf.substr(conn.rpos, newline - conn.rpos);
    conn.rpos = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++conn.line_no;
    if (!handle_request(reactor, conn, line)) break;
  }
  if (reactor.conns.find(fd) == reactor.conns.end()) return;  // destroyed
  if (conn.rpos > 0) {
    conn.rbuf.erase(0, conn.rpos);
    conn.rpos = 0;
  }
  // An unterminated request longer than max_line is a protocol error; the
  // loop above left no newline behind when parsing is active, so size alone
  // decides. (A *stalled* connection may legitimately buffer more — bounded
  // by the read pause below, not by eviction.)
  if (!conn.closing && !conn.quit_pending && !conn.lockstep_wait &&
      conn.rbuf.size() > config_.max_line) {
    ++protocol_errors_;
    if (!send_farewell(reactor, conn, "ERR line too long\n")) return;
  }
  update_read_interest(reactor, conn);
}

bool ServeServer::handle_request(Reactor& reactor, Conn& conn,
                                 const std::string& line) {
  if (line.empty()) return true;  // blank lines are keepalive noise
  Request request;
  std::string error;
  if (!parse_request(line, &request, &error)) {
    ++protocol_errors_;
    return queue_reply(reactor, conn, "ERR line " +
                                          std::to_string(conn.line_no) + " " +
                                          error + "\n");
  }
  switch (request.verb) {
    case Verb::kPing:
      return queue_reply(reactor, conn, "PONG\n");
    case Verb::kQuit:
      if (conn.inflight_tags.empty()) {
        send_farewell(reactor, conn, "BYE\n");
      } else {
        conn.quit_pending = true;
      }
      return false;
    case Verb::kStats: {
      // The snapshot is engine-thread work; park the connection (lockstep)
      // until the CSV comes back so the block is never interrupted.
      conn.lockstep_wait = true;
      std::shared_ptr<Inbox> inbox = reactor.inbox;
      const std::uint64_t id = conn.id;
      service_->stats_csv_async(external_gauges(), [inbox, id](
                                                       std::string csv) {
        Completion completion;
        completion.conn = id;
        completion.text = csv.empty() ? "DRAINING\n" : csv + "END\n";
        completion.end_lockstep = true;
        inbox->post(std::move(completion));
      });
      return true;
    }
    case Verb::kBid:
      break;
  }
  const bool tagged = !request.tag.empty();
  if (tagged && conn.inflight_tags.count(request.tag) != 0) {
    ++protocol_errors_;
    return queue_reply(reactor, conn, "ERR line " +
                                          std::to_string(conn.line_no) +
                                          " duplicate tag '" + request.tag +
                                          "' still in flight\n");
  }
  std::shared_ptr<Inbox> inbox = reactor.inbox;
  const std::uint64_t id = conn.id;
  const std::string tag = request.tag;
  double retry_after = 0.0;
  const BrokerService::SubmitStatus status = service_->submit(
      bid_task(request),
      [inbox, id, tag](const Outcome& outcome) {
        Completion completion;
        completion.conn = id;
        completion.tag = tag;
        completion.end_lockstep = tag.empty();
        completion.text = format_outcome(tag, outcome);
        inbox->post(std::move(completion));
      },
      &retry_after);
  switch (status) {
    case BrokerService::SubmitStatus::kDraining:
      return queue_reply(reactor, conn,
                         tagged ? "DRAINING " + tag + "\n" : "DRAINING\n");
    case BrokerService::SubmitStatus::kQueueFull:
      return queue_reply(reactor, conn,
                         "BUSY " + (tagged ? tag + " " : std::string()) +
                             format_double(retry_after) + "\n");
    case BrokerService::SubmitStatus::kQueued:
      break;
  }
  if (tagged)
    conn.inflight_tags.insert(tag);
  else
    conn.lockstep_wait = true;
  return true;
}

bool ServeServer::queue_reply(Reactor& reactor, Conn& conn,
                              const std::string& text) {
  if (conn.wbuf.size() - conn.woff + text.size() > config_.max_write_buffer) {
    // A consumer this far behind never catches up inside the cap; evict
    // rather than buffer without bound.
    ++overflow_evicted_;
    destroy(reactor, conn);
    return false;
  }
  conn.wbuf.append(text);
  // Corked (inside a drain_inbox burst): the reply rides the single flush
  // at the end of the drain pass instead of paying a send(2) now.
  if (conn.corked) return true;
  return flush(reactor, conn);
}

bool ServeServer::send_farewell(Reactor& reactor, Conn& conn,
                                const std::string& text) {
  conn.closing = true;
  return queue_reply(reactor, conn, text);
}

bool ServeServer::flush(Reactor& reactor, Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    // MSG_NOSIGNAL turns a dead peer into an error return, not SIGPIPE.
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++write_backpressure_;
      if (conn.woff > (64u << 10)) {
        conn.wbuf.erase(0, conn.woff);
        conn.woff = 0;
      }
      if (!conn.want_write) {
        conn.want_write = true;
        reactor.poller.modify(conn.fd, conn.want_read, true);
      }
      return true;
    }
    destroy(reactor, conn);
    return false;
  }
  conn.wbuf.clear();
  conn.woff = 0;
  if (conn.closing) {
    destroy(reactor, conn);
    return false;
  }
  if (conn.want_write) {
    conn.want_write = false;
    reactor.poller.modify(conn.fd, conn.want_read, false);
  }
  return true;
}

void ServeServer::update_read_interest(Reactor& reactor, Conn& conn) {
  // While a lockstep reply is pending, keep reading only until a spare
  // line's worth of input is buffered; past that, deregister read interest
  // and let TCP backpressure the client.
  const bool backlog = conn.rbuf.size() - conn.rpos > config_.max_line;
  const bool want = !conn.closing && !conn.quit_pending &&
                    !(conn.lockstep_wait && backlog);
  if (want != conn.want_read) {
    conn.want_read = want;
    reactor.poller.modify(conn.fd, want, conn.want_write);
  }
}

void ServeServer::destroy(Reactor& reactor, Conn& conn) {
  const int fd = conn.fd;
  const std::uint64_t id = conn.id;
  reactor.poller.remove(fd);
  ::close(fd);
  reactor.by_id.erase(id);
  reactor.conns.erase(fd);  // frees conn
}

void ServeServer::sweep_idle(Reactor& reactor) {
  if (config_.idle_timeout_s <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> victims;
  for (const auto& entry : reactor.conns) {
    const Conn& conn = *entry.second;
    if (conn.lockstep_wait || conn.quit_pending || conn.closing) continue;
    if (!conn.inflight_tags.empty()) continue;  // a bid is still in flight
    if (std::chrono::duration<double>(now - conn.last_activity).count() >
        config_.idle_timeout_s) {
      victims.push_back(conn.id);
    }
  }
  for (const std::uint64_t id : victims) {
    auto it = reactor.by_id.find(id);
    if (it == reactor.by_id.end()) continue;
    ++idle_evicted_;
    send_farewell(reactor, *it->second, "TIMEOUT idle\n");
  }
}

}  // namespace serve
}  // namespace mbts
