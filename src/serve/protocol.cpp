#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

namespace mbts {
namespace serve {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Full-token numeric parse, the load_swf discipline: strtod must consume
/// the entire token or the field is malformed — "1.5x" is an error, not 1.5.
bool parse_number(std::string_view token, double* out) {
  const std::string buffer(token);  // strtod needs NUL termination
  char* end = nullptr;
  const double v = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool field_error(std::string* error, std::size_t index, const char* name,
                 std::string_view token, const char* what) {
  *error = "field " + std::to_string(index) + " (" + name + "): " + what +
           " '" + std::string(token) + "'";
  return false;
}

}  // namespace

bool parse_request(std::string_view line, Request* request,
                   std::string* error) {
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string_view verb = tokens[0];
  if (verb == "PING") {
    if (tokens.size() != 1) {
      *error = "PING takes no arguments";
      return false;
    }
    request->verb = Verb::kPing;
    return true;
  }
  if (verb == "QUIT") {
    if (tokens.size() != 1) {
      *error = "QUIT takes no arguments";
      return false;
    }
    request->verb = Verb::kQuit;
    return true;
  }
  if (verb == "STATS" || verb == "METRICS") {
    if (tokens.size() != 1) {
      *error = std::string(verb) + " takes no arguments";
      return false;
    }
    request->verb = Verb::kStats;
    return true;
  }
  if (verb != "BID") {
    *error = "unknown verb '" + std::string(verb) + "'";
    return false;
  }
  if (tokens.size() != 5) {
    *error = "BID takes exactly 4 fields (runtime value decay bound), got " +
             std::to_string(tokens.size() - 1);
    return false;
  }
  request->verb = Verb::kBid;
  if (!parse_number(tokens[1], &request->runtime))
    return field_error(error, 1, "runtime", tokens[1], "malformed number");
  if (!(request->runtime > 0.0) || !std::isfinite(request->runtime))
    return field_error(error, 1, "runtime", tokens[1],
                       "must be a positive finite number, got");
  if (!parse_number(tokens[2], &request->value))
    return field_error(error, 2, "value", tokens[2], "malformed number");
  if (!std::isfinite(request->value))
    return field_error(error, 2, "value", tokens[2],
                       "must be a finite number, got");
  if (!parse_number(tokens[3], &request->decay))
    return field_error(error, 3, "decay", tokens[3], "malformed number");
  if (request->decay < 0.0 || !std::isfinite(request->decay))
    return field_error(error, 3, "decay", tokens[3],
                       "must be a non-negative finite number, got");
  if (tokens[4] == "inf") {
    request->bound = kInf;
  } else {
    if (!parse_number(tokens[4], &request->bound))
      return field_error(error, 4, "bound", tokens[4],
                         "malformed number (or 'inf')");
    if (request->bound < 0.0 || !std::isfinite(request->bound))
      return field_error(error, 4, "bound", tokens[4],
                         "must be a non-negative number or 'inf', got");
  }
  return true;
}

Task bid_task(const Request& request) {
  Task task;
  task.runtime = request.runtime;
  task.value = ValueFunction(request.value, request.decay, request.bound);
  return task;
}

}  // namespace serve
}  // namespace mbts
