#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

namespace mbts {
namespace serve {

namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Full-token numeric parse, the load_swf discipline: strtod must consume
/// the entire token or the field is malformed — "1.5x" is an error, not 1.5.
bool parse_number(std::string_view token, double* out) {
  const std::string buffer(token);  // strtod needs NUL termination
  char* end = nullptr;
  const double v = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool field_error(std::string* error, std::size_t index, const char* name,
                 std::string_view token, const char* what) {
  *error = "field " + std::to_string(index) + " (" + name + "): " + what +
           " '" + std::string(token) + "'";
  return false;
}

}  // namespace

bool parse_request(std::string_view line, Request* request,
                   std::string* error) {
  const std::vector<std::string_view> tokens = tokenize(line);
  if (tokens.empty()) {
    *error = "empty request";
    return false;
  }
  const std::string_view verb = tokens[0];
  if (verb == "PING") {
    if (tokens.size() != 1) {
      *error = "PING takes no arguments";
      return false;
    }
    request->verb = Verb::kPing;
    return true;
  }
  if (verb == "QUIT") {
    if (tokens.size() != 1) {
      *error = "QUIT takes no arguments";
      return false;
    }
    request->verb = Verb::kQuit;
    return true;
  }
  if (verb == "STATS" || verb == "METRICS") {
    if (tokens.size() != 1) {
      *error = std::string(verb) + " takes no arguments";
      return false;
    }
    request->verb = Verb::kStats;
    return true;
  }
  if (verb != "BID") {
    *error = "unknown verb '" + std::string(verb) + "'";
    return false;
  }
  // Field count picks the form: 4 arguments is the original untagged bid,
  // 5 puts a client-chosen tag first (pipelined sessions match replies by
  // it). Diagnostics number fields as they appear on the wire, so a tagged
  // bid's runtime is field 2.
  if (tokens.size() != 5 && tokens.size() != 6) {
    *error =
        "BID takes 4 fields (runtime value decay bound) or 5 with a "
        "leading tag, got " +
        std::to_string(tokens.size() - 1);
    return false;
  }
  request->verb = Verb::kBid;
  request->tag.clear();
  std::size_t base = 1;
  if (tokens.size() == 6) {
    const std::string_view tag = tokens[1];
    if (tag.size() > kMaxTag)
      return field_error(error, 1, "tag", tag, "longer than 64 chars,");
    for (const char c : tag)
      if (c < '!' || c > '~')
        return field_error(error, 1, "tag", tag,
                           "must be printable with no whitespace, got");
    request->tag.assign(tag);
    base = 2;
  }
  if (!parse_number(tokens[base], &request->runtime))
    return field_error(error, base, "runtime", tokens[base],
                       "malformed number");
  if (!(request->runtime > 0.0) || !std::isfinite(request->runtime))
    return field_error(error, base, "runtime", tokens[base],
                       "must be a positive finite number, got");
  if (!parse_number(tokens[base + 1], &request->value))
    return field_error(error, base + 1, "value", tokens[base + 1],
                       "malformed number");
  if (!std::isfinite(request->value))
    return field_error(error, base + 1, "value", tokens[base + 1],
                       "must be a finite number, got");
  if (!parse_number(tokens[base + 2], &request->decay))
    return field_error(error, base + 2, "decay", tokens[base + 2],
                       "malformed number");
  if (request->decay < 0.0 || !std::isfinite(request->decay))
    return field_error(error, base + 2, "decay", tokens[base + 2],
                       "must be a non-negative finite number, got");
  if (tokens[base + 3] == "inf") {
    request->bound = kInf;
  } else {
    if (!parse_number(tokens[base + 3], &request->bound))
      return field_error(error, base + 3, "bound", tokens[base + 3],
                         "malformed number (or 'inf')");
    if (request->bound < 0.0 || !std::isfinite(request->bound))
      return field_error(error, base + 3, "bound", tokens[base + 3],
                         "must be a non-negative number or 'inf', got");
  }
  return true;
}

Task bid_task(const Request& request) {
  Task task;
  task.runtime = request.runtime;
  task.value = ValueFunction(request.value, request.decay, request.bound);
  return task;
}

}  // namespace serve
}  // namespace mbts
