// The canonical serve-mode economy (DESIGN.md §9).
//
// mbts_serve, the serve unit/loopback tests, and the serve bench all drive
// the same Figure-1 three-site trio: a large conservative site with a high
// slack threshold, a mid-size aggressive one, and a small cost-only site
// with no admission control. Keeping the config in one place means a
// fingerprint recorded by any of them replays in all of them.
#pragma once

#include <cstdint>

#include "market/market.hpp"

namespace mbts {
namespace serve {

/// The Fig. 1 trio (same shape as examples/market_service.cpp):
/// big-conservative (24 procs, FirstReward(0.2), threshold 300),
/// mid-aggressive (12 procs, FirstReward(0.8), threshold 0),
/// small-cost-only (6 procs, SWPT, no admission control).
MarketConfig fig1_market(std::uint64_t seed);

}  // namespace serve
}  // namespace mbts
