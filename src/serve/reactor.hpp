// Readiness multiplexer for the serve front end (DESIGN.md §9).
//
// A Poller watches a set of non-blocking fds for read/write readiness. The
// primary backend is epoll (level-triggered); a portable poll(2) backend is
// always compiled and selectable at runtime, both so non-Linux builds work
// and so the fallback path stays tested on Linux CI. Both backends carry a
// self-pipe wakeup: wake() is callable from any thread (the engine thread
// posts completions, the acceptor hands over connections) and makes a
// blocked wait() return promptly without being reported as an fd event.
//
// One Poller belongs to one reactor thread; only wake() is thread-safe.
#pragma once

#include <vector>

namespace mbts {
namespace serve {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// EPOLLERR/EPOLLHUP (POLLERR/POLLHUP/POLLNVAL): the owner should tear
  /// the connection down.
  bool error = false;
};

enum class PollerBackend {
  kAuto,   ///< epoll on Linux, poll elsewhere
  kEpoll,  ///< Linux only; CHECKs elsewhere
  kPoll,
};

class Poller {
 public:
  explicit Poller(PollerBackend backend = PollerBackend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, bool want_read, bool want_write);
  void modify(int fd, bool want_read, bool want_write);
  /// The fd must currently be registered. Call before closing it.
  void remove(int fd);

  /// Blocks until an fd is ready, `timeout_ms` elapses (-1 = no timeout),
  /// or wake() is called; appends ready fds to `events` (cleared first) and
  /// returns the count. Wakeups drain the self-pipe and report no event.
  int wait(int timeout_ms, std::vector<PollEvent>* events);

  /// Thread-safe: makes a concurrent (or the next) wait() return promptly.
  void wake();

  bool using_epoll() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;  // < 0: poll backend
  int wake_pipe_[2] = {-1, -1};
  // poll backend interest list (fd -> events), rebuilt into a pollfd array
  // per wait; linear ops are fine for the fallback path.
  struct Interest {
    int fd;
    bool want_read;
    bool want_write;
  };
  std::vector<Interest> interests_;
  Interest* find_interest(int fd);
};

}  // namespace serve
}  // namespace mbts
