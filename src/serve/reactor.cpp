#include "serve/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>

#if defined(__linux__)
#include <sys/epoll.h>
#define MBTS_HAVE_EPOLL 1
#else
#define MBTS_HAVE_EPOLL 0
#endif

#include "util/check.hpp"

namespace mbts {
namespace serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MBTS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  MBTS_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

}  // namespace

Poller::Poller(PollerBackend backend) {
  // Both pipe ends non-blocking: wake() must never block a full pipe (one
  // pending byte is as good as fifty), and the drain reads until EAGAIN.
  MBTS_CHECK_MSG(::pipe(wake_pipe_) == 0, "pipe failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
#if MBTS_HAVE_EPOLL
  if (backend != PollerBackend::kPoll) {
    epoll_fd_ = ::epoll_create1(0);
    MBTS_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_pipe_[0];
    MBTS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev) ==
               0);
    return;
  }
#else
  MBTS_CHECK_MSG(backend != PollerBackend::kEpoll,
                 "epoll backend is Linux-only");
#endif
  (void)backend;
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

Poller::Interest* Poller::find_interest(int fd) {
  for (Interest& interest : interests_)
    if (interest.fd == fd) return &interest;
  return nullptr;
}

void Poller::add(int fd, bool want_read, bool want_write) {
#if MBTS_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    MBTS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                   "epoll_ctl(ADD) failed");
    return;
  }
#endif
  MBTS_CHECK_MSG(find_interest(fd) == nullptr, "fd already registered");
  interests_.push_back({fd, want_read, want_write});
}

void Poller::modify(int fd, bool want_read, bool want_write) {
#if MBTS_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    MBTS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                   "epoll_ctl(MOD) failed");
    return;
  }
#endif
  Interest* interest = find_interest(fd);
  MBTS_CHECK_MSG(interest != nullptr, "modify of unregistered fd");
  interest->want_read = want_read;
  interest->want_write = want_write;
}

void Poller::remove(int fd) {
#if MBTS_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    MBTS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0,
                   "epoll_ctl(DEL) failed");
    return;
  }
#endif
  for (std::size_t i = 0; i < interests_.size(); ++i) {
    if (interests_[i].fd == fd) {
      interests_[i] = interests_.back();
      interests_.pop_back();
      return;
    }
  }
  MBTS_CHECK_MSG(false, "remove of unregistered fd");
}

int Poller::wait(int timeout_ms, std::vector<PollEvent>* events) {
  events->clear();
  bool woken = false;
#if MBTS_HAVE_EPOLL
  if (epoll_fd_ >= 0) {
    epoll_event ready[256];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, ready, 256, timeout_ms);
    } while (n < 0 && errno == EINTR);
    MBTS_CHECK_MSG(n >= 0, "epoll_wait failed");
    for (int i = 0; i < n; ++i) {
      if (ready[i].data.fd == wake_pipe_[0]) {
        woken = true;
        continue;
      }
      PollEvent event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
  } else
#endif
  {
    std::vector<pollfd> fds;
    fds.reserve(interests_.size() + 1);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Interest& interest : interests_) {
      short want = 0;
      if (interest.want_read) want |= POLLIN;
      if (interest.want_write) want |= POLLOUT;
      fds.push_back({interest.fd, want, 0});
    }
    int n;
    do {
      n = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    MBTS_CHECK_MSG(n >= 0, "poll failed");
    woken = (fds[0].revents & POLLIN) != 0;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      PollEvent event;
      event.fd = fds[i].fd;
      event.readable = (fds[i].revents & POLLIN) != 0;
      event.writable = (fds[i].revents & POLLOUT) != 0;
      event.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events->push_back(event);
    }
  }
  if (woken) {
    char drain[64];
    while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
    }
  }
  return static_cast<int>(events->size());
}

void Poller::wake() {
  const char byte = 'w';
  // EAGAIN means a wakeup is already pending — exactly as good.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

}  // namespace serve
}  // namespace mbts
