#include "serve/broker_service.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace mbts {
namespace serve {

namespace {
constexpr const char* kLatencyHistogram = "serve/quote_latency_ms";
}  // namespace

BrokerService::BrokerService(ServeConfig config, PacingClock* clock)
    : config_(std::move(config)), clock_(clock) {
  MBTS_CHECK_MSG(clock_ != nullptr, "BrokerService needs a pacing clock");
  MBTS_CHECK_MSG(config_.market.shards <= 1,
                 "service mode requires the single-engine market");
  MBTS_CHECK_MSG(!config_.market.faults.enabled(),
                 "service mode does not support the fault model");
  MBTS_CHECK_MSG(config_.queue_capacity > 0,
                 "admission queue capacity must be positive");
  market_ = std::make_unique<Market>(config_.market);
  // Instrument registration is first-use; doing it here keeps the CSV
  // column set stable from the first STATS call. Registry references are
  // stable for its lifetime, so the hot path adds through the cached
  // pointer instead of a name lookup per bid.
  latency_hist_ = &metrics_.histogram(kLatencyHistogram, 0.0, 1000.0, 64);
}

BrokerService::~BrokerService() {
  if (started_ && !drained_) drain();
}

void BrokerService::start() {
  MBTS_CHECK_MSG(!started_, "BrokerService already started");
  started_ = true;
  engine_thread_ = std::thread([this] { engine_loop(); });
}

BrokerService::SubmitStatus BrokerService::submit(
    const Task& task, std::future<Outcome>* outcome, double* retry_after) {
  MBTS_CHECK_MSG(outcome != nullptr, "submit needs an outcome future");
  Entry entry;
  entry.outcome.emplace();
  *outcome = entry.outcome->get_future();
  const SubmitStatus status =
      submit_entry(task, std::move(entry), retry_after);
  if (status != SubmitStatus::kQueued) *outcome = {};
  return status;
}

BrokerService::SubmitStatus BrokerService::submit(const Task& task,
                                                  OutcomeCallback on_outcome,
                                                  double* retry_after) {
  MBTS_CHECK_MSG(on_outcome != nullptr, "submit needs an outcome callback");
  Entry entry;
  entry.on_outcome = std::move(on_outcome);
  return submit_entry(task, std::move(entry), retry_after);
}

BrokerService::SubmitStatus BrokerService::submit_entry(const Task& task,
                                                        Entry&& entry,
                                                        double* retry_after) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    ++rejected_draining_;
    return SubmitStatus::kDraining;
  }
  if (queued_bids_ >= config_.queue_capacity) {
    ++rejected_backpressure_;
    // The hint scales with the whole live backlog — queued plus the popped
    // run still negotiating — so backpressure grows with what the client
    // is actually behind, not a constant.
    if (retry_after != nullptr)
      *retry_after = config_.retry_after *
                     static_cast<double>(queued_bids_ + inflight_bids_) /
                     static_cast<double>(config_.queue_capacity);
    return SubmitStatus::kQueueFull;
  }
  entry.kind = Entry::Kind::kBid;
  entry.bid.client = 0;
  entry.bid.task = task;
  // The stamp and the id are the admission order: both assigned under mu_,
  // both monotone, so the admitted stream replays through inject() as an
  // arrival-ordered trace (bit-identity invariant 1).
  last_stamp_ = std::max(last_stamp_, clock_->now());
  entry.bid.task.arrival = last_stamp_;
  entry.bid.task.id = next_task_id_++;
  entry.enqueued = std::chrono::steady_clock::now();
  queue_.push_back(std::move(entry));
  ++queued_bids_;
  peak_queue_depth_ = std::max(peak_queue_depth_, queued_bids_);
  ++admitted_count_;
  cv_.notify_all();
  return SubmitStatus::kQueued;
}

std::string BrokerService::stats_csv(const ExternalGauges& extra) {
  // shared_ptr because std::function requires a copyable callable.
  auto text = std::make_shared<std::promise<std::string>>();
  std::future<std::string> got = text->get_future();
  stats_csv_async(extra,
                  [text](std::string csv) { text->set_value(std::move(csv)); });
  return got.get();
}

void BrokerService::stats_csv_async(const ExternalGauges& extra,
                                    std::function<void(std::string)> on_csv) {
  MBTS_CHECK_MSG(on_csv != nullptr, "stats_csv_async needs a callback");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_) {
      MBTS_CHECK_MSG(started_,
                     "stats_csv requires a running service "
                     "(use final_metrics_csv after drain)");
      Entry entry;
      entry.kind = Entry::Kind::kStats;
      entry.external = extra;
      entry.on_text = std::move(on_csv);
      queue_.push_back(std::move(entry));
      cv_.notify_all();
      return;
    }
  }
  // A drain may have already stopped (or be stopping) the engine thread; an
  // entry queued now would never be fulfilled. The empty string tells the
  // caller to answer DRAINING; the callback runs inline on this thread.
  on_csv("");
}

MarketStats BrokerService::drain(const ExternalGauges& extra) {
  MBTS_CHECK_MSG(started_, "drain requires a started service");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_) {
      draining_ = true;
      drain_extra_ = extra;
    }
  }
  cv_.notify_all();
  // Concurrent drains serialize here: the first caller joins the engine
  // thread and publishes final_stats_; the rest block until it has, then
  // return the same stats. (Two unsynchronized join() calls on one thread
  // would be UB, as would racing the final_stats_/drained_ writes.)
  std::lock_guard<std::mutex> serial(drain_mu_);
  if (engine_thread_.joinable()) engine_thread_.join();
  drained_ = true;
  return final_stats_;
}

const Trace& BrokerService::admitted_trace() const {
  MBTS_CHECK_MSG(drained_, "admitted_trace is valid after drain()");
  return admitted_;
}

std::string BrokerService::final_metrics_csv() const {
  MBTS_CHECK_MSG(drained_, "final_metrics_csv is valid after drain()");
  std::ostringstream out;
  metrics_.write_csv(out);
  return out.str();
}

std::uint64_t BrokerService::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_count_;
}

std::size_t BrokerService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bids_;
}

std::size_t BrokerService::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queue_depth_;
}

std::size_t BrokerService::inflight_bids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_bids_;
}

std::uint64_t BrokerService::admission_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_batches_;
}

std::uint64_t BrokerService::batched_bids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batched_bids_;
}

std::uint64_t BrokerService::rejected_backpressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_backpressure_;
}

std::uint64_t BrokerService::rejected_draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_draining_;
}

bool BrokerService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void BrokerService::pump_strictly_before(double boundary) {
  market_->engine().run_until_before(
      boundary, static_cast<int>(EventPriority::kArrival));
}

void BrokerService::process_bid(Entry& entry) {
  if (config_.process_stall.count() > 0)
    std::this_thread::sleep_for(config_.process_stall);
  const Task& task = entry.bid.task;
  // Invariant 2: everything the batch run would have executed before this
  // bid's (arrival, kArrival) slot runs first; then the bid event is the
  // queue minimum (nothing else can occupy [boundary, (arrival, kArrival)]
  // — stamps are monotone and retry/rebid events need faults), so step()
  // executes exactly this negotiation.
  pump_strictly_before(task.arrival);
  const std::size_t history_before = market_->broker().history().size();
  market_->submit_bid(entry.bid);
  const bool stepped = market_->engine().step();
  MBTS_CHECK_MSG(stepped &&
                     market_->broker().history().size() == history_before + 1,
                 "live bid did not negotiate as the next engine event");
  const NegotiationResult& result = market_->broker().history().back();
  MBTS_CHECK_MSG(result.bid.task.id == task.id,
                 "negotiation history out of order");
  Outcome outcome;
  outcome.task = task.id;
  outcome.awarded = result.awarded_site.has_value();
  if (outcome.awarded) {
    outcome.site = *result.awarded_site;
    const SiteAgent* agent = nullptr;
    for (const auto& site : market_->sites())
      if (site->id() == outcome.site) agent = site.get();
    MBTS_CHECK(agent != nullptr && !agent->contracts().empty());
    const Contract& contract = agent->contracts().back();
    MBTS_CHECK_MSG(contract.task == task.id, "contract out of order");
    outcome.expected_completion = contract.agreed_completion;
    outcome.agreed_price = contract.agreed_price;
  }
  admitted_.tasks.push_back(entry.bid.task);
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - entry.enqueued)
          .count();
  latency_hist_->add(latency_ms);
  if (entry.outcome.has_value()) entry.outcome->set_value(outcome);
  if (entry.on_outcome) entry.on_outcome(outcome);
}

std::string BrokerService::snapshot_metrics(const ExternalGauges& extra) {
  std::uint64_t admitted = 0, bp = 0, draining = 0, batches = 0, batched = 0;
  std::size_t depth = 0, peak = 0, inflight = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted = admitted_count_;
    bp = rejected_backpressure_;
    draining = rejected_draining_;
    depth = queued_bids_;
    peak = peak_queue_depth_;
    inflight = inflight_bids_;
    batches = admission_batches_;
    batched = batched_bids_;
  }
  // Counters are cumulative in the registry; members are the source of
  // truth, so each snapshot adds only the delta since the last one.
  metrics_.counter("serve/bids_admitted")
      .add(admitted - last_counted_admitted_);
  last_counted_admitted_ = admitted;
  metrics_.counter("serve/bids_rejected_backpressure")
      .add(bp - last_counted_bp_);
  last_counted_bp_ = bp;
  metrics_.counter("serve/bids_rejected_draining")
      .add(draining - last_counted_draining_);
  last_counted_draining_ = draining;
  metrics_.counter("serve/admission_batches")
      .add(batches - last_counted_batches_);
  last_counted_batches_ = batches;
  metrics_.counter("serve/batched_bids").add(batched - last_counted_batched_);
  last_counted_batched_ = batched;
  // Live depth and its high-water mark as separate gauges: the peak used to
  // ride only in the depth gauge's max() column, which the CSV consumer
  // never saw.
  metrics_.gauge("serve/queue_depth").set(static_cast<double>(depth));
  metrics_.gauge("serve/queue_depth_peak").set(static_cast<double>(peak));
  metrics_.gauge("serve/inflight_bids").set(static_cast<double>(inflight));
  metrics_.gauge("serve/engine_events_executed")
      .set(static_cast<double>(market_->engine().events_executed()));
  metrics_.gauge("serve/sim_now").set(market_->engine().now());
  for (const auto& [name, value] : extra) metrics_.gauge(name).set(value);
  std::ostringstream out;
  metrics_.write_csv(out);
  return out.str();
}

void BrokerService::engine_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<Entry> run;  // reused batch buffer
  for (;;) {
    if (!queue_.empty()) {
      if (queue_.front().kind == Entry::Kind::kBid) {
        // Batched admission: pop the whole run of consecutive bids at the
        // front in this one lock acquisition and negotiate them
        // back-to-back. Queue order is preserved, each bid still pumps to
        // its own stamp before negotiating, so the replay fingerprint is
        // the same as the one-at-a-time loop's; what disappears is a
        // lock/wakeup round trip per bid. Capacity frees at pop (the run
        // is being negotiated, not queued); the in-flight count keeps the
        // BUSY hint honest about it.
        run.clear();
        while (!queue_.empty() &&
               queue_.front().kind == Entry::Kind::kBid) {
          run.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        queued_bids_ -= run.size();
        inflight_bids_ += run.size();
        ++admission_batches_;
        batched_bids_ += run.size();
        lk.unlock();
        for (Entry& entry : run) process_bid(entry);
        lk.lock();
        inflight_bids_ -= run.size();
        continue;
      }
      Entry entry = std::move(queue_.front());
      queue_.pop_front();
      {
        // "Stats as of now": pump everything due at the current sim time
        // before snapshotting, so a test that advanced the clock observes
        // the settlements that advance made due. Never pump past a bid
        // already queued behind this entry, though: its arrival was stamped
        // at enqueue time and may predate now() under a wall clock, and
        // running events in [arrival, now) here would execute them before
        // the bid — breaking invariant 2 and leaving process_bid's own
        // boundary in the engine's past. Cap at the earliest queued bid's
        // stamp, and fold now() into the stamp floor only when no bid is
        // waiting.
        double boundary = std::max(last_stamp_, clock_->now());
        bool capped = false;
        for (const Entry& waiting : queue_) {
          if (waiting.kind == Entry::Kind::kBid) {
            boundary = std::min(boundary, waiting.bid.task.arrival);
            capped = true;
            break;
          }
        }
        if (!capped) last_stamp_ = boundary;
        lk.unlock();
        pump_strictly_before(boundary);
        entry.on_text(snapshot_metrics(entry.external));
      }
      lk.lock();
      continue;
    }
    if (draining_) break;
    // Idle: pump events due by now. Folding the boundary into the stamp
    // floor keeps every future stamp >= it (clock monotonicity orders the
    // reads under mu_), so the pump never runs past a bid to come.
    last_stamp_ = std::max(last_stamp_, clock_->now());
    const double boundary = last_stamp_;
    lk.unlock();
    pump_strictly_before(boundary);
    lk.lock();
    if (!queue_.empty() || draining_) continue;
    double next_t = 0.0;
    const bool pending = market_->engine().peek_next_event(&next_t);
    if (pending) {
      clock_->wait_until(cv_, lk, next_t);
    } else {
      clock_->wait(cv_, lk);
    }
  }
  // Graceful drain: the queue is empty and no submit can add to it. Run
  // the engine dry — every open contract's completion executes — then
  // assemble the final stats and metrics (invariant 3).
  const ExternalGauges extra = drain_extra_;
  lk.unlock();
  market_->engine().run();
  final_stats_ = market_->collect_stats();
  snapshot_metrics(extra);
}

}  // namespace serve
}  // namespace mbts
