// Wire protocol of the live broker (DESIGN.md §9).
//
// Line-oriented, human-typeable, no external deps. One request per line,
// terminated by '\n' ('\r' tolerated); fields are whitespace-separated full
// tokens. Grammar:
//
//   BID <runtime> <value> <decay> <bound>         negotiate one task
//   BID <tag> <runtime> <value> <decay> <bound>   same, pipelined (tagged)
//   STATS                                   dump the metrics registry as CSV
//   METRICS                                 alias for STATS
//   PING                                    liveness probe
//   QUIT                                    close the session
//
// Field count disambiguates the two BID forms: four arguments is the
// original untagged bid, five means the first is a client-chosen tag — a
// printable token (no whitespace, at most kMaxTag chars) echoed back on the
// response so a connection may keep many bids in flight and match replies
// out of band. An untagged bid keeps the lockstep contract: the server
// answers it before reading further requests from that connection, so a
// pre-tag client sees exactly the original wire behavior. Reusing a tag
// while it is still unanswered on the same connection is a protocol error;
// an answered tag may be reused.
//
// <runtime> > 0, <value> finite, <decay> >= 0 — all finite decimal numbers;
// <bound> is a non-negative penalty bound or the literal "inf" for an
// unbounded value function. Responses (one line each, except STATS which
// streams CSV and terminates with "END"; <tag> appears iff the bid was
// tagged):
//
//   AWARD [tag] <task> <site> <completion> <price>   contract formed
//   REJECT [tag] <task>                          every site declined
//   BUSY [tag] <retry_after>                     admission queue full, retry
//   DRAINING [tag]                               server is shutting down
//                                                (also the STATS reply then)
//   TIMEOUT idle                                 session evicted (then close)
//   ERR <diagnostic>                             malformed request
//   PONG                                         PING reply
//   BYE                                          QUIT reply (then close)
//
// Every queued bid — tagged or not — is answered exactly once; replies to a
// connection arrive in its own submission order (the admission queue is
// FIFO), but tagged replies may interleave with PONG and STATS traffic,
// and a STATS block may be preceded (never interrupted) by tagged replies.
//
// Numbers in responses print at %.17g, so a client that echoes a bid stream
// back into the batch tooling reproduces it bit-for-bit.
//
// Parsing follows the importer's discipline (workload/swf.cpp, fixed in
// PR 4): every numeric field is a full-token strtod with an end-pointer
// check, and a malformed field is a loud per-field diagnostic — never a
// half-parsed bid.
#pragma once

#include <string>
#include <string_view>

#include "core/task.hpp"

namespace mbts {
namespace serve {

enum class Verb { kBid, kStats, kPing, kQuit };

/// Longest accepted bid tag (printable, whitespace-free token).
inline constexpr std::size_t kMaxTag = 64;

/// One parsed request line. For kBid the four numeric fields mirror the
/// paper's bid tuple (runtime_i, value_i, decay_i, bound_i); bound == kInf
/// encodes an unbounded value function; `tag` is empty for the untagged
/// (lockstep) form.
struct Request {
  Verb verb = Verb::kPing;
  std::string tag;
  double runtime = 0.0;
  double value = 0.0;
  double decay = 0.0;
  double bound = kInf;
};

/// Parses one request line (no trailing newline). Returns false and fills
/// `error` with a "field K (<name>): ..." diagnostic on malformed input;
/// the caller prepends its session line number.
bool parse_request(std::string_view line, Request* request,
                   std::string* error);

/// Builds the Task a BID request negotiates: id/arrival are assigned by the
/// admission queue, the value function from the parsed fields.
Task bid_task(const Request& request);

}  // namespace serve
}  // namespace mbts
