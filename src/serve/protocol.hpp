// Wire protocol of the live broker (DESIGN.md §9).
//
// Line-oriented, human-typeable, no external deps. One request per line,
// terminated by '\n' ('\r' tolerated); fields are whitespace-separated full
// tokens. Grammar:
//
//   BID <runtime> <value> <decay> <bound>   negotiate one task
//   STATS                                   dump the metrics registry as CSV
//   METRICS                                 alias for STATS
//   PING                                    liveness probe
//   QUIT                                    close the session
//
// <runtime> > 0, <value> finite, <decay> >= 0 — all finite decimal numbers;
// <bound> is a non-negative penalty bound or the literal "inf" for an
// unbounded value function. Responses (one line each, except STATS which
// streams CSV and terminates with "END"):
//
//   AWARD <task> <site> <completion> <price>   contract formed
//   REJECT <task>                              every site declined
//   BUSY <retry_after>                         admission queue full, retry
//   DRAINING                                   server is shutting down
//                                              (also the STATS reply then)
//   TIMEOUT idle                               session evicted (then close)
//   ERR <diagnostic>                           malformed request
//   PONG                                       PING reply
//   BYE                                        QUIT reply (then close)
//
// Numbers in responses print at %.17g, so a client that echoes a bid stream
// back into the batch tooling reproduces it bit-for-bit.
//
// Parsing follows the importer's discipline (workload/swf.cpp, fixed in
// PR 4): every numeric field is a full-token strtod with an end-pointer
// check, and a malformed field is a loud per-field diagnostic — never a
// half-parsed bid.
#pragma once

#include <string>
#include <string_view>

#include "core/task.hpp"

namespace mbts {
namespace serve {

enum class Verb { kBid, kStats, kPing, kQuit };

/// One parsed request line. For kBid the four fields mirror the paper's bid
/// tuple (runtime_i, value_i, decay_i, bound_i); bound == kInf encodes an
/// unbounded value function.
struct Request {
  Verb verb = Verb::kPing;
  double runtime = 0.0;
  double value = 0.0;
  double decay = 0.0;
  double bound = kInf;
};

/// Parses one request line (no trailing newline). Returns false and fills
/// `error` with a "field K (<name>): ..." diagnostic on malformed input;
/// the caller prepends its session line number.
bool parse_request(std::string_view line, Request* request,
                   std::string* error);

/// Builds the Task a BID request negotiates: id/arrival are assigned by the
/// admission queue, the value function from the parsed fields.
Task bid_task(const Request& request);

}  // namespace serve
}  // namespace mbts
