// Loopback-grade TCP front end for the live broker (DESIGN.md §9).
//
// Hand-rolled over POSIX sockets — no external deps. One blocking accept
// thread (woken for shutdown through a self-pipe) hands each connection to
// a session task on the existing ThreadPool. Sessions are line-oriented
// (serve/protocol.hpp), poll in short slices so they notice shutdown and
// idle timeouts promptly, and block only on their own bid futures.
//
// The server owns no market state: every bid goes through BrokerService's
// admission queue, and STATS snapshots are engine-thread work. The server's
// own counters (sessions, evictions, protocol errors) ride into the
// snapshot as external gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/broker_service.hpp"
#include "util/thread_pool.hpp"

namespace mbts {
namespace serve {

struct ServerConfig {
  /// Bind address; the default serves loopback only (this is a research
  /// prototype, not a hardened daemon).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  /// Session worker threads (concurrent connections beyond this queue).
  std::size_t session_threads = 4;
  /// Idle sessions are evicted after this many wall seconds (0 disables).
  double idle_timeout_s = 60.0;
  /// Requests longer than this are a protocol error (guards line assembly).
  std::size_t max_line = 4096;
};

class ServeServer {
 public:
  /// `service` is not owned; start() must be called before connections and
  /// the service must be running (started) for bids to resolve.
  ServeServer(ServerConfig config, BrokerService* service);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Throws CheckError when the
  /// socket cannot be set up.
  void start();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, tell live sessions to finish
  /// (they answer DRAINING to further bids), join everything. Does NOT
  /// drain the BrokerService — the caller does that once sessions are gone.
  void stop();

  std::uint64_t sessions_opened() const { return sessions_opened_; }
  std::uint64_t sessions_idle_evicted() const { return idle_evicted_; }
  std::uint64_t protocol_errors() const { return protocol_errors_; }

  /// The server-side counters as STATS external gauges.
  BrokerService::ExternalGauges external_gauges() const;

 private:
  void accept_loop();
  void session(int fd);
  /// Handles one request line; returns false when the session should close.
  bool handle_line(int fd, const std::string& line, std::size_t line_no);

  const ServerConfig config_;
  BrokerService* const service_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> sessions_;
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> idle_evicted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace serve
}  // namespace mbts
