// Reactor TCP front end for the live broker (DESIGN.md §9).
//
// Hand-rolled over POSIX sockets — no external deps. `session_threads`
// reactor threads each run an epoll (fallback: poll) loop over non-blocking
// sockets; accepted connections are dealt round-robin and owned by exactly
// one reactor thread, so per-connection state needs no locks. Reads
// assemble lines into a per-connection buffer, writes drain a bounded
// per-connection queue (a slow consumer is evicted, never allowed to pin
// memory), and bid outcomes resolved on the engine thread come back through
// a completion inbox + wakeup pipe. Nothing here ever blocks on a bid:
// thousands of connections — lockstep or pipelined — share the reactors.
//
// Session semantics: an untagged BID keeps the original lockstep contract
// (no further requests are parsed on that connection until it is answered —
// reads pause once a line's worth of input is already buffered, so the
// kernel socket buffer backpressures a client that runs ahead). Tagged bids
// pipeline: many may be in flight per connection, replies are matched by
// tag, and QUIT defers its BYE until every in-flight tag has been answered.
//
// The server owns no market state: every bid goes through BrokerService's
// admission queue, and STATS snapshots are engine-thread work (requested
// asynchronously — a pending snapshot parks no reactor). The server's own
// counters (sessions, evictions, protocol errors, write backpressure) ride
// into the snapshot as external gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/broker_service.hpp"
#include "serve/reactor.hpp"

namespace mbts {
namespace serve {

struct ServerConfig {
  /// Bind address; the default serves loopback only (this is a research
  /// prototype, not a hardened daemon).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  /// Reactor threads; each owns a share of the connections (>= 1).
  std::size_t session_threads = 4;
  /// Idle sessions are evicted after this many wall seconds (0 disables).
  /// Sessions with a bid in flight are never idle-evicted.
  double idle_timeout_s = 60.0;
  /// Requests longer than this are a protocol error (guards line assembly).
  std::size_t max_line = 4096;
  /// Per-connection pending-output cap; a consumer this far behind is
  /// evicted instead of growing the buffer without bound.
  std::size_t max_write_buffer = 4u << 20;
  /// > 0: SO_SNDBUF for accepted sockets (0 keeps the kernel default).
  /// Shrinking it forces the partial-write path early — ops tuning and a
  /// test hook for the bounded write queue.
  int sndbuf = 0;
  /// Test hook: use the portable poll(2) backend even where epoll exists.
  bool force_poll_backend = false;
};

class ServeServer {
 public:
  /// `service` is not owned; start() must be called before connections and
  /// the service must be running (started) for bids to resolve. The server
  /// must stay alive until the service has drained (engine-thread
  /// completion callbacks post into the server's inboxes).
  ServeServer(ServerConfig config, BrokerService* service);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, and spawns the reactor threads. Throws CheckError when
  /// the socket cannot be set up.
  void start();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  /// Shutdown: stop accepting, close every session, join the reactors.
  /// Does NOT drain the BrokerService — the caller does that next; bids
  /// already admitted still negotiate there (their replies have nowhere to
  /// go and are dropped).
  void stop();

  std::uint64_t sessions_opened() const { return sessions_opened_; }
  std::uint64_t sessions_idle_evicted() const { return idle_evicted_; }
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  /// Sessions evicted for exceeding max_write_buffer.
  std::uint64_t sessions_overflow_evicted() const {
    return overflow_evicted_;
  }
  /// Times a reply hit a full socket buffer and had to wait for EPOLLOUT
  /// (each is a partial write absorbed by the bounded queue).
  std::uint64_t write_backpressure_events() const {
    return write_backpressure_;
  }

  /// The server-side counters as STATS external gauges.
  BrokerService::ExternalGauges external_gauges() const;

 private:
  struct Conn;
  struct Completion;
  struct Inbox;
  struct Reactor;

  void reactor_loop(Reactor& reactor);
  void accept_ready(Reactor& reactor);
  void adopt_fd(Reactor& reactor, int fd);
  void drain_inbox(Reactor& reactor);
  void apply_completion(Reactor& reactor, Completion& completion);
  void on_readable(Reactor& reactor, Conn& conn);
  void on_writable(Reactor& reactor, Conn& conn);
  /// Parses and handles every complete line the connection's lockstep
  /// state allows. May destroy the connection.
  void parse_input(Reactor& reactor, Conn& conn);
  /// Returns false when the connection was destroyed (or is closing).
  bool handle_request(Reactor& reactor, Conn& conn, const std::string& line);
  /// Appends to the connection's write queue and flushes opportunistically.
  /// Returns false when the connection was destroyed (overflow/dead peer).
  bool queue_reply(Reactor& reactor, Conn& conn, const std::string& text);
  /// queue_reply + close once drained (BYE / TIMEOUT / fatal ERR).
  bool send_farewell(Reactor& reactor, Conn& conn, const std::string& text);
  /// Returns false when the connection was destroyed.
  bool flush(Reactor& reactor, Conn& conn);
  void update_read_interest(Reactor& reactor, Conn& conn);
  void destroy(Reactor& reactor, Conn& conn);
  void sweep_idle(Reactor& reactor);

  const ServerConfig config_;
  BrokerService* const service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  // acceptor-thread only (round robin)
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> idle_evicted_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> overflow_evicted_{0};
  std::atomic<std::uint64_t> write_backpressure_{0};
};

}  // namespace serve
}  // namespace mbts
