// Fixed-bin histogram with exact-quantile support for modest sample counts.
//
// Experiment traces are at most a few hundred thousand samples, so we keep
// the raw values for exact quantiles alongside binned counts for display.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace mbts {

class Histogram {
 public:
  /// bins uniform over [lo, hi); out-of-range samples clamp to end bins.
  Histogram(double lo, double hi, std::size_t bins);

  // The sort mutex makes Histogram non-copyable; nothing needs copies, and
  // accidental ones would be quadratic in sample count anyway.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// NaN samples are counted in nan_count() and otherwise ignored: a NaN
  /// cannot be binned (flooring it is undefined behaviour) or ranked into a
  /// quantile, and silently corrupting a bin would poison every export.
  void add(double x);

  std::size_t count() const { return values_.size(); }
  /// NaN samples rejected by add().
  std::size_t nan_count() const { return nan_count_; }
  const std::vector<std::size_t>& bins() const { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Exact quantile (linear interpolation), q in [0, 1]. Requires count>0.
  double quantile(double q) const;

  /// Fraction of samples <= x.
  double cdf(double x) const;

  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t nan_count_ = 0;
  // quantile()/cdf() lazily sort values_ on first use; the mutex serializes
  // that mutation (and the reads over it) so concurrent const readers —
  // e.g. sweep threads sharing a finished histogram — are race-free.
  mutable std::mutex sort_mutex_;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace mbts
