// Fixed-bin histogram with exact-quantile support for modest sample counts.
//
// Experiment traces are at most a few hundred thousand samples, so we keep
// the raw values for exact quantiles alongside binned counts for display.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mbts {

class Histogram {
 public:
  /// bins uniform over [lo, hi); out-of-range samples clamp to end bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t count() const { return values_.size(); }
  const std::vector<std::size_t>& bins() const { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Exact quantile (linear interpolation), q in [0, 1]. Requires count>0.
  double quantile(double q) const;

  /// Fraction of samples <= x.
  double cdf(double x) const;

  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace mbts
