#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mbts {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::mean() const { return n_ ? mean_ : 0.0; }

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return n_ ? min_ : 0.0; }
double Summary::max() const { return n_ ? max_ : 0.0; }

double Summary::sem() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

}  // namespace mbts
