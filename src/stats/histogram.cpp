#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MBTS_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  MBTS_CHECK_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    // floor(NaN) cast to an integer is UB and used to land in a garbage
    // bin; NaNs are tallied separately instead of entering bins or values.
    ++nan_count_;
    return;
  }
  const double t = (x - lo_) / (hi_ - lo_);
  // Clamp in double space *before* the integer cast: converting an
  // out-of-range double (e.g. from an infinite sample) to an integer type
  // is undefined behaviour, not a saturating operation.
  const double scaled = std::floor(t * static_cast<double>(counts_.size()));
  const double last = static_cast<double>(counts_.size() - 1);
  const auto idx =
      static_cast<std::size_t>(std::clamp(scaled, 0.0, last));
  ++counts_[idx];
  values_.push_back(x);
  sorted_ = false;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  MBTS_CHECK_MSG(!values_.empty(), "quantile of empty histogram");
  MBTS_CHECK(q >= 0.0 && q <= 1.0);
  // The lazy sort mutates values_ from a const method; the guard covers the
  // reads too, so concurrent quantile()/cdf() calls never see a mid-sort
  // vector.
  std::lock_guard<std::mutex> lock(sort_mutex_);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= values_.size()) return values_.back();
  const double frac = pos - static_cast<double>(i);
  return values_[i] * (1.0 - frac) + values_[i + 1] * frac;
}

double Histogram::cdf(double x) const {
  if (values_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(sort_mutex_);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak ? counts_[i] * width / peak : 0;
    os << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace mbts
