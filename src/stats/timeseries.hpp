// Time-weighted accumulators for simulation metrics such as utilization and
// queue depth, plus a sampled series for rate-over-interval plots.
#pragma once

#include <cstddef>
#include <vector>

namespace mbts {

/// Integrates a piecewise-constant signal over simulated time.
///
/// Call set(t, v) whenever the signal changes; the time-average between any
/// two points is area / elapsed. Times must be non-decreasing.
class TimeWeighted {
 public:
  void set(double t, double value);

  /// Closes the signal at time t and returns the time average since start.
  double average(double t_end) const;

  double current() const { return value_; }
  double start_time() const { return start_; }
  bool empty() const { return !started_; }

 private:
  bool started_ = false;
  double start_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
};

/// Append-only (t, value) series; supports trapezoid-free event sampling.
class SampledSeries {
 public:
  void add(double t, double value);

  std::size_t size() const { return points_.size(); }
  double time(std::size_t i) const { return points_[i].t; }
  double value(std::size_t i) const { return points_[i].v; }

  /// Sum of values with t in [lo, hi).
  double sum_in(double lo, double hi) const;

 private:
  struct Point {
    double t;
    double v;
  };
  std::vector<Point> points_;
};

}  // namespace mbts
