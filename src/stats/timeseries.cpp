#include "stats/timeseries.hpp"

#include "util/check.hpp"

namespace mbts {

void TimeWeighted::set(double t, double value) {
  if (!started_) {
    started_ = true;
    start_ = t;
    last_t_ = t;
    value_ = value;
    return;
  }
  MBTS_CHECK_MSG(t >= last_t_, "time-weighted updates must be ordered");
  area_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = value;
}

double TimeWeighted::average(double t_end) const {
  if (!started_ || t_end <= start_) return 0.0;
  MBTS_CHECK(t_end >= last_t_);
  const double total_area = area_ + value_ * (t_end - last_t_);
  return total_area / (t_end - start_);
}

void SampledSeries::add(double t, double value) {
  MBTS_CHECK_MSG(points_.empty() || t >= points_.back().t,
                 "series points must be time-ordered");
  points_.push_back({t, value});
}

double SampledSeries::sum_in(double lo, double hi) const {
  double sum = 0.0;
  for (const auto& p : points_)
    if (p.t >= lo && p.t < hi) sum += p.v;
  return sum;
}

}  // namespace mbts
