// Online summary statistics (Welford) used throughout the evaluation harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace mbts {

/// Single-pass mean/variance/min/max accumulator (numerically stable).
class Summary {
 public:
  void add(double x);

  /// Merges another summary (parallel reduction of replications).
  void merge(const Summary& other);

  std::size_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Standard error of the mean; 0 when n < 2.
  double sem() const;

  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mbts
