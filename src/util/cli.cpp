#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  MBTS_CHECK_MSG(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    if (!flags_.count(body)) {
      // --no-foo negation, valid only for flags with a boolean default:
      // --no-jobs must be an unknown-flag error, not jobs="false".
      if (body.rfind("no-", 0) == 0 && flags_.count(body.substr(3))) {
        Flag& target = flags_[body.substr(3)];
        if (!is_boolean(target)) {
          std::cerr << "--" << body << ": flag --" << body.substr(3)
                    << " is not a boolean and cannot be negated\n"
                    << usage();
          return false;
        }
        if (has_value) {
          std::cerr << "--" << body << " does not take a value\n" << usage();
          return false;
        }
        target.value = "false";
        continue;
      }
      std::cerr << "unknown flag --" << body << "\n" << usage();
      return false;
    }
    Flag& flag = flags_[body];
    if (has_value) {
      flag.value = value;
    } else if (is_boolean(flag)) {
      // Bare boolean flag.
      flag.value = "true";
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flag.value = argv[++i];
    } else {
      // A value-typed flag at end of argv (or followed by another --flag)
      // used to fall into the boolean branch and silently become "true",
      // which only exploded later inside get_int/get_double.
      std::cerr << "flag --" << body << " requires a value\n" << usage();
      return false;
    }
  }
  return true;
}

bool CliParser::is_boolean(const Flag& flag) {
  return flag.default_value == "true" || flag.default_value == "false";
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  MBTS_CHECK_MSG(it != flags_.end(), "flag not registered: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& flag = find(name);
  return flag.value.value_or(flag.default_value);
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  MBTS_CHECK_MSG(end && *end == '\0', "flag --" + name + " is not a number: " + s);
  return v;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  MBTS_CHECK_MSG(ec == std::errc() && ptr == s.data() + s.size(),
                 "flag --" + name + " is not an integer: " + s);
  return v;
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  const std::string s = get_string(name);
  std::uint64_t v = 0;
  // from_chars<uint64_t> rejects a leading '-' outright, so --jobs=-1 is a
  // loud usage error here instead of a 2^64 wraparound at the call site.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  MBTS_CHECK_MSG(ec == std::errc() && ptr == s.data() + s.size(),
                 "flag --" + name + " must be a non-negative integer: " + s);
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  MBTS_CHECK_MSG(false, "flag --" + name + " is not a boolean: " + s);
  return false;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace mbts
