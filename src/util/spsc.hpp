// Single-producer/single-consumer mailbox for shard coordination.
//
// A fixed-capacity ring of trivially-copyable messages with exactly one
// producer thread and one consumer thread. push/pop synchronize through two
// atomic cursors (acquire/release), so every write the producer made before
// push() is visible to the consumer after pop() returns the message — the
// happens-before edge the sharded engine's epoch protocol is built on.
//
// Messages may carry pointers into producer-owned storage (the sharded
// engine's batched commands point at their boundary list instead of copying
// it): the push edge publishes the pointed-at bytes too. The producer must
// not rewrite that storage until it has observed the consumer move past the
// message — either through an out-of-band ack (the epoch barrier) or
// through push()'s capacity wait, whose acquire load of the consumer cursor
// orders a reuse at distance >= 2x capacity after the consumer's last read
// (tests/test_sharded.cpp pins both patterns under TSan).
//
// Blocking behaviour is spin-then-park: a short bounded spin (the common
// case when both sides are hot) followed by a mutex/condvar wait, so an
// idle side never burns a core. This keeps the mailbox usable on
// single-core machines, where pure spinning would serialize every handoff
// on the scheduler quantum.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <type_traits>

#include "util/check.hpp"

namespace mbts {

template <typename T, std::size_t kCapacity = 8>
class SpscMailbox {
  static_assert(std::is_trivially_copyable_v<T>,
                "mailbox messages must be PODs — they are memcpy'd through "
                "the ring");
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

 public:
  /// Producer side. Blocks (rare: the coordinator keeps at most one command
  /// in flight per shard) until a slot frees up.
  void push(const T& message) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (full(tail)) {
      wait([&] { return !full(tail_.load(std::memory_order_relaxed)); });
    }
    slots_[tail & kMask] = message;
    tail_.store(tail + 1, std::memory_order_release);
    notify();
  }

  /// Consumer side. Blocks until a message arrives.
  T pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (empty(head)) {
      wait([&] { return !empty(head_.load(std::memory_order_relaxed)); });
    }
    T message = slots_[head & kMask];
    head_.store(head + 1, std::memory_order_release);
    notify();
    return message;
  }

  /// Consumer side, non-blocking. Returns false when the ring is empty.
  bool try_pop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (empty(head)) return false;
    *out = slots_[head & kMask];
    head_.store(head + 1, std::memory_order_release);
    notify();
    return true;
  }

 private:
  static constexpr std::size_t kMask = kCapacity - 1;
  // A few hundred pause/yield iterations cover the hot handoff without
  // holding a core hostage when the peer is descheduled (1-core hosts).
  static constexpr int kSpins = 128;

  bool empty(std::size_t head) const {
    return head == tail_.load(std::memory_order_acquire);
  }
  bool full(std::size_t tail) const {
    return tail - head_.load(std::memory_order_acquire) == kCapacity;
  }

  template <typename Ready>
  void wait(const Ready& ready) {
    for (int spin = 0; spin < kSpins; ++spin) {
      if (ready()) return;
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, ready);
  }

  void notify() {
    // Take the lock so the notify cannot slip between a waiter's predicate
    // check and its wait() — the classic lost-wakeup window.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_one();
  }

  T slots_[kCapacity];
  std::atomic<std::size_t> head_{0};  // consumer cursor
  std::atomic<std::size_t> tail_{0};  // producer cursor
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace mbts
