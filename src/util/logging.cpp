#include "util/logging.hpp"

#include <iostream>
#include <mutex>

namespace mbts {

namespace {
std::mutex g_log_mutex;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  sink_ = sink;
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace mbts
