// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but sweeps run
// runs concurrently, so emission is serialized with a mutex. Log level is a
// process-wide setting; DEBUG output from inner simulation loops is compiled
// in but filtered at runtime so tests can enable it selectively.
#pragma once

#include <atomic>
#include <iosfwd>
#include <sstream>
#include <string>

namespace mbts {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level);

/// Process-wide logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  // The level is atomic because enabled() runs unlocked on every MBTS_LOG
  // while tests and sweeps may flip the level from another thread; relaxed
  // ordering suffices — a filter decision may lag one message behind a
  // concurrent set_level, but never reads a torn value.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Redirect output (default: stderr). Pass nullptr to restore stderr.
  /// Serialized against in-flight write() calls: a message is emitted
  /// entirely to the old sink or entirely to the new one.
  void set_sink(std::ostream* sink);

  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Thread-safe emission of one formatted line.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  std::ostream* sink_ = nullptr;  // nullptr => stderr; guarded by the
                                  // emission mutex in logging.cpp
};

namespace detail {
/// Accumulates one log statement and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mbts

#define MBTS_LOG(level)                                \
  if (!::mbts::Logger::instance().enabled(level)) {    \
  } else                                               \
    ::mbts::detail::LogLine(level)

#define MBTS_DEBUG MBTS_LOG(::mbts::LogLevel::kDebug)
#define MBTS_INFO MBTS_LOG(::mbts::LogLevel::kInfo)
#define MBTS_WARN MBTS_LOG(::mbts::LogLevel::kWarn)
#define MBTS_ERROR MBTS_LOG(::mbts::LogLevel::kError)
