// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but sweeps run
// runs concurrently, so emission is serialized with a mutex. Log level is a
// process-wide setting; DEBUG output from inner simulation loops is compiled
// in but filtered at runtime so tests can enable it selectively.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace mbts {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level);

/// Process-wide logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Redirect output (default: stderr). Pass nullptr to restore stderr.
  void set_sink(std::ostream* sink);

  bool enabled(LogLevel level) const { return level >= level_; }

  /// Thread-safe emission of one formatted line.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;  // nullptr => stderr
};

namespace detail {
/// Accumulates one log statement and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mbts

#define MBTS_LOG(level)                                \
  if (!::mbts::Logger::instance().enabled(level)) {    \
  } else                                               \
    ::mbts::detail::LogLine(level)

#define MBTS_DEBUG MBTS_LOG(::mbts::LogLevel::kDebug)
#define MBTS_INFO MBTS_LOG(::mbts::LogLevel::kInfo)
#define MBTS_WARN MBTS_LOG(::mbts::LogLevel::kWarn)
#define MBTS_ERROR MBTS_LOG(::mbts::LogLevel::kError)
