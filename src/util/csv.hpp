// CSV emission and parsing for traces and experiment results.
//
// The dialect is deliberately simple: comma separator, quotes only when a
// field contains comma/quote/newline, '.' decimal point, LF line endings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mbts {

/// Streams rows to an ostream; the header is written on first row.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Appends one row; must have exactly as many fields as the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string field(double v);
  static std::string field(std::int64_t v);
  static std::string field(std::uint64_t v);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_record(const std::vector<std::string>& fields);

  std::ostream& out_;
  std::vector<std::string> header_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Fully-parsed CSV document (small files: traces, result tables).
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name; throws CheckError if absent.
  std::size_t column(const std::string& name) const;
};

/// Parses a document; throws CheckError on ragged rows or bad quoting.
CsvDocument parse_csv(std::istream& in);
CsvDocument read_csv_file(const std::string& path);
void write_csv_file(const std::string& path, const CsvDocument& doc);

/// Escapes a single field per the dialect above.
std::string csv_escape(const std::string& field);

}  // namespace mbts
