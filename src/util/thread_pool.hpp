// Fixed-size thread pool used by the experiment harness to run independent
// simulation replications concurrently.
//
// Each simulation run is single-threaded and deterministic; only the sweep
// layer is parallel, so the pool needs no work stealing — a single locked
// deque is far from the bottleneck when each task is a multi-millisecond
// simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mbts {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is submitted as O(size()) contiguous index blocks, not one task
  /// per index, so huge sweeps stay cheap. Every index is attempted even if
  /// another throws; one exception is rethrown (first one wins).
  /// Must not be called from a worker of this same pool (MBTS_CHECK —
  /// blocking on your own pool's queue deadlocks once all workers do it).
  /// Calling it on a *different* pool from a worker is fine: nested scoped
  /// pools and cross-pool fan-out are supported and exception-safe (a
  /// worker exception — or a failed submit — never leaves a queued block
  /// holding a dangling reference to `fn`).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mbts
