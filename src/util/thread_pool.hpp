// Fixed-size thread pool used by the experiment harness to run independent
// simulation replications concurrently.
//
// Each simulation run is single-threaded and deterministic; only the sweep
// layer is parallel, so the pool needs no work stealing — a single locked
// deque is far from the bottleneck when each task is a multi-millisecond
// simulation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mbts {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions from any iteration are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mbts
