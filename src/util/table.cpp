#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MBTS_CHECK_MSG(!header_.empty(), "table header must be non-empty");
}

void ConsoleTable::row(std::vector<std::string> fields) {
  MBTS_CHECK_MSG(fields.size() == header_.size(),
                 "table row width does not match header");
  rows_.push_back(std::move(fields));
}

std::string ConsoleTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      os << (i ? "  " : "");
      os << fields[i];
      os << std::string(width[i] - fields[i].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w;
  os << std::string(total + 2 * (width.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mbts
