// Lightweight contract checking for the mbts libraries.
//
// MBTS_CHECK is always on (cheap invariants on hot-but-not-critical paths);
// MBTS_DCHECK compiles away in NDEBUG builds and guards O(n) verification
// sweeps that would change algorithmic complexity if left enabled.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mbts {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mbts

#define MBTS_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::mbts::detail::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MBTS_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::mbts::detail::check_fail(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define MBTS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define MBTS_DCHECK(expr) MBTS_CHECK(expr)
#endif
