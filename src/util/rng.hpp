// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour in mbts flows from a single user-provided seed
// through SeedSequence, so every experiment is bit-reproducible. The core
// generator is xoshiro256++ (Blackman & Vigna), seeded via splitmix64 as its
// authors recommend; it is small, fast, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mbts {

/// splitmix64: used to expand seeds and as a cheap standalone generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 — the project-wide generator.
/// Satisfies UniformRandomBitGenerator so it composes with <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from splitmix64(seed).
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  /// 2^128 calls to next() in O(1); used to derive independent streams.
  void jump();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n);

  bool bernoulli(double p) { return uniform01() < p; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Derives independent, named generator streams from one master seed.
///
/// Each call to stream(k) returns a Xoshiro256 whose state is a pure function
/// of (master seed, k), so adding a new consumer never perturbs existing
/// streams — essential for comparing policies on identical traces.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master) : master_(master) {}

  std::uint64_t master() const { return master_; }

  /// Independent stream for the given key (e.g. trace index, replication).
  Xoshiro256 stream(std::uint64_t key) const;

  /// Stream keyed by two coordinates (e.g. (experiment, replication)).
  Xoshiro256 stream(std::uint64_t a, std::uint64_t b) const;

 private:
  std::uint64_t master_;
};

}  // namespace mbts
