// Aligned console tables for the figure-reproduction benches.
#pragma once

#include <string>
#include <vector>

namespace mbts {

/// Accumulates rows and renders a padded ASCII table.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void row(std::vector<std::string> fields);

  /// Convenience numeric formatting used across benches.
  static std::string num(double v, int precision = 3);

  std::string render() const;

  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mbts
