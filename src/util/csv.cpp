#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mbts {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), header_(std::move(header)) {
  MBTS_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::write_record(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  MBTS_CHECK_MSG(fields.size() == header_.size(),
                 "CSV row width does not match header");
  if (!header_written_) {
    write_record(header_);
    header_written_ = true;
  }
  write_record(fields);
  ++rows_;
}

std::string CsvWriter::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CsvWriter::field(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::field(std::uint64_t v) { return std::to_string(v); }

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  MBTS_CHECK_MSG(false, "CSV column not found: " + name);
  return 0;
}

CsvDocument parse_csv(std::istream& in) {
  CsvDocument doc;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool any_char = false;

  auto end_field = [&] {
    record.push_back(field);
    field.clear();
  };
  auto end_record = [&] {
    end_field();
    if (doc.header.empty()) {
      doc.header = record;
    } else {
      MBTS_CHECK_MSG(record.size() == doc.header.size(), "ragged CSV row");
      doc.rows.push_back(record);
    }
    record.clear();
    any_char = false;
  };

  char c;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      any_char = true;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        any_char = true;
        break;
      case ',':
        end_field();
        any_char = true;
        break;
      case '\r':
        break;  // tolerate CRLF input
      case '\n':
        if (any_char || !record.empty()) end_record();
        break;
      default:
        field += c;
        any_char = true;
    }
  }
  MBTS_CHECK_MSG(!in_quotes, "unterminated quote in CSV");
  if (any_char || !record.empty()) end_record();
  return doc;
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path);
  MBTS_CHECK_MSG(in.good(), "cannot open CSV file: " + path);
  return parse_csv(in);
}

void write_csv_file(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path);
  MBTS_CHECK_MSG(out.good(), "cannot write CSV file: " + path);
  CsvWriter writer(out, doc.header);
  for (const auto& row : doc.rows) writer.row(row);
  // CsvWriter only emits the header with the first row; cover empty docs.
  if (doc.rows.empty()) {
    for (std::size_t i = 0; i < doc.header.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(doc.header[i]);
    }
    out << '\n';
  }
}

}  // namespace mbts
