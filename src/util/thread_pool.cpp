#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mbts {

namespace {
// Pool whose worker loop is running on this thread (nullptr on non-workers).
// Used to reject re-entrant parallel_for: a worker that blocks waiting for
// tasks queued on its own pool can deadlock once every worker does the same.
thread_local const ThreadPool* current_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  // Scoped, not just assigned: nested pools are legal (a worker may build
  // and drive an inner pool), and if this thread is ever reused by another
  // pool's machinery the marker must not leak past this pool's lifetime.
  current_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  current_worker_pool = nullptr;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  MBTS_CHECK_MSG(current_worker_pool != this,
                 "re-entrant parallel_for from a worker of the same pool "
                 "would deadlock; use a nested pool or restructure");
  if (n == 0) return;
  // Block-chunked submission: a bounded number of range tasks instead of one
  // task + future per index, so a 100k-point sweep costs a handful of
  // allocations. A small multiple of the worker count keeps stragglers from
  // serializing the tail when iteration costs are uneven.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  try {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t count = base + (c < extra ? 1 : 0);
      const std::size_t end = begin + count;
      futures.push_back(submit([&fn, begin, end] {
        // Every index runs even when a sibling throws; the block reports the
        // first failure once the rest of its range has been attempted.
        std::exception_ptr error;
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(i);
          } catch (...) {
            if (!error) error = std::current_exception();
          }
        }
        if (error) std::rethrow_exception(error);
      }));
      begin = end;
    }
  } catch (...) {
    // A failed submit (allocation) must not leak in-flight blocks: their
    // lambdas capture `fn` by reference, which dies with this frame, so
    // wait for everything already queued before propagating.
    for (auto& f : futures) {
      if (f.valid()) f.wait();
    }
    throw;
  }
  MBTS_DCHECK(begin == n);
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mbts
