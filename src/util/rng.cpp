#include "util/rng.hpp"

#include "util/check.hpp"

namespace mbts {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // All-zero state is the one invalid state; splitmix64 cannot produce four
  // consecutive zeros, but guard anyway for safety with hostile seeds.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  MBTS_CHECK_MSG(n > 0, "below(0) is undefined");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Xoshiro256 SeedSequence::stream(std::uint64_t key) const {
  // Mix master and key through splitmix64 twice so nearby keys diverge.
  SplitMix64 sm(master_ ^ (key * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t derived = sm.next() ^ sm.next();
  return Xoshiro256(derived);
}

Xoshiro256 SeedSequence::stream(std::uint64_t a, std::uint64_t b) const {
  SplitMix64 sm(master_ ^ (a * 0xbf58476d1ce4e5b9ULL) ^
                (b * 0x94d049bb133111ebULL));
  const std::uint64_t derived = sm.next() ^ sm.next();
  return Xoshiro256(derived);
}

}  // namespace mbts
