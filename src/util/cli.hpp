// Small command-line flag parser for the example and bench binaries.
//
// Supports --name=value, --name value, and boolean --flag / --no-flag.
// Unknown flags are an error so typos in experiment parameters fail loudly
// instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mbts {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers a flag with a default value (rendered in --help).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  /// Accessors; all MBTS_CHECK that the flag was registered.
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  /// Non-negative integer accessor for count-like flags (--jobs, --shards):
  /// rejects negative and non-numeric values with a usage-style message
  /// instead of letting a -1 wrap to ~2^64 in a size_t cast downstream.
  std::uint64_t get_uint(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional arguments left after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  const Flag& find(const std::string& name) const;
  static bool is_boolean(const Flag& flag);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mbts
