#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mbts {

namespace {
// Exponential variate via inversion; log1p keeps precision for small u and
// the epsilon floor keeps durations physical (a zero-length outage would be
// a no-op event pair).
double exponential(Xoshiro256& rng, double mean) {
  return std::max(1e-9, -mean * std::log1p(-rng.uniform01()));
}
}  // namespace

std::string to_string(CrashMode mode) {
  switch (mode) {
    case CrashMode::kKill:
      return "kill";
    case CrashMode::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

FaultPlan FaultPlan::generate(const FaultConfig& config, std::size_t n_sites,
                              double horizon, Xoshiro256 rng) {
  FaultPlan plan;
  if (config.outage_rate <= 0.0 || horizon <= 0.0) return plan;
  MBTS_CHECK_MSG(config.mean_outage > 0.0,
                 "mean outage duration must be positive");
  const double mean_gap = 1.0 / config.outage_rate;
  for (std::size_t site = 0; site < n_sites; ++site) {
    double t = 0.0;
    while (true) {
      t += exponential(rng, mean_gap);
      if (t >= horizon) break;
      const double up = t + exponential(rng, config.mean_outage);
      plan.outages.push_back({static_cast<SiteId>(site), t, up});
      t = up;
    }
  }
  std::sort(plan.outages.begin(), plan.outages.end(),
            [](const SiteOutage& a, const SiteOutage& b) {
              if (a.down_at != b.down_at) return a.down_at < b.down_at;
              return a.site < b.site;
            });
  return plan;
}

std::string FaultPlan::validate(std::size_t n_sites) const {
  std::vector<double> last_up(n_sites, 0.0);
  double last_down = -kInf;
  for (const SiteOutage& o : outages) {
    if (o.site >= n_sites) return "outage names a site beyond the market";
    if (o.down_at < 0.0) return "outage starts before t=0";
    if (o.down_at < last_down) return "outages not sorted by down_at";
    if (o.up_at <= o.down_at) return "outage has non-positive duration";
    if (o.down_at < last_up[o.site])
      return "overlapping outages for one site";
    last_up[o.site] = o.up_at;
    last_down = o.down_at;
  }
  return "";
}

FaultInjector::FaultInjector(SimEngine& engine, FaultPlan plan,
                             std::size_t n_sites, double quote_timeout_prob,
                             Xoshiro256 timeout_rng)
    : engine_(engine),
      plan_(std::move(plan)),
      quote_timeout_prob_(quote_timeout_prob),
      timeout_rng_(timeout_rng),
      down_(n_sites, false) {
  MBTS_CHECK_MSG(quote_timeout_prob_ >= 0.0 && quote_timeout_prob_ < 1.0,
                 "quote timeout probability must be in [0, 1)");
  const std::string problem = plan_.validate(n_sites);
  MBTS_CHECK_MSG(problem.empty(), "invalid fault plan: " + problem);
}

void FaultInjector::handle_down(SimEngine& engine,
                                const EventPayload& payload) {
  auto& self = *static_cast<FaultInjector*>(payload.target);
  const SiteOutage& outage =
      self.plan_.outages[static_cast<std::size_t>(payload.a)];
  MBTS_DCHECK(&engine == &self.engine_);
  MBTS_DCHECK(!self.down_[outage.site]);
  self.down_[outage.site] = true;
  ++self.outages_started_;
  if (self.trace_ != nullptr)
    self.trace_->record(engine.now(), TraceEventKind::kOutageDown, outage.site,
                        kInvalidTask, outage.up_at);
  if (self.on_down_) self.on_down_(outage.site, outage);
}

void FaultInjector::handle_up(SimEngine& engine, const EventPayload& payload) {
  auto& self = *static_cast<FaultInjector*>(payload.target);
  const SiteOutage& outage =
      self.plan_.outages[static_cast<std::size_t>(payload.a)];
  MBTS_DCHECK(&engine == &self.engine_);
  MBTS_DCHECK(self.down_[outage.site]);
  self.down_[outage.site] = false;
  if (self.trace_ != nullptr)
    self.trace_->record(engine.now(), TraceEventKind::kOutageUp, outage.site,
                        kInvalidTask, outage.down_at);
  if (self.on_up_) self.on_up_(outage.site);
}

void FaultInjector::arm(DownHook on_down, UpHook on_up) {
  MBTS_CHECK_MSG(!armed_, "fault injector armed twice");
  armed_ = true;
  on_down_ = std::move(on_down);
  on_up_ = std::move(on_up);
  engine_.register_handler(EventKind::kFaultDown, &FaultInjector::handle_down);
  engine_.register_handler(EventKind::kFaultUp, &FaultInjector::handle_up);
  // Scheduling each outage's (down, up) pair in plan order gives recoveries
  // a lower sequence number than any same-instant later outage, so a site
  // whose outage touches the previous recovery (up_at == next down_at)
  // comes back up before it goes down again.
  for (std::size_t i = 0; i < plan_.outages.size(); ++i) {
    const SiteOutage& outage = plan_.outages[i];
    EventPayload payload;
    payload.target = this;
    payload.a = i;
    engine_.schedule_event(outage.down_at, EventPriority::kFault,
                           EventKind::kFaultDown, payload);
    engine_.schedule_event(outage.up_at, EventPriority::kFault,
                           EventKind::kFaultUp, payload);
  }
}

bool FaultInjector::quote_times_out(SiteId site) {
  (void)site;
  // The zero-probability path must not advance the stream: a disabled
  // injector has to be bit-invisible to the rest of the run.
  if (quote_timeout_prob_ <= 0.0) return false;
  const bool lost = timeout_rng_.bernoulli(quote_timeout_prob_);
  if (lost) ++quote_timeouts_;
  return lost;
}

}  // namespace mbts
