#include "sim/sharded_engine.hpp"

#include <limits>
#include <thread>

#include "util/check.hpp"

namespace mbts {

ShardedEngine::ShardedEngine(std::size_t shards, std::size_t members,
                             QueueBackend backend)
    : shards_(shards) {
  MBTS_CHECK_MSG(shards_ >= 1, "sharded engine needs at least one shard");
  // More shards than members is legal (the extra workers just ack every
  // epoch); capping keeps thread count proportional to real work.
  if (members > 0) shards_ = std::min(shards_, members);
  engines_.reserve(members);
  for (std::size_t i = 0; i < members; ++i)
    engines_.push_back(std::make_unique<SimEngine>(backend));
  inboxes_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s)
    inboxes_.push_back(std::make_unique<SpscMailbox<Command>>());
}

ShardedEngine::~ShardedEngine() { stop(); }

void ShardedEngine::start() {
  MBTS_CHECK_MSG(!started_, "sharded engine already started");
  started_ = true;
  pool_ = std::make_unique<ThreadPool>(shards_);
  workers_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s)
    workers_.push_back(pool_->submit([this, s] { worker_loop(s); }));
}

void ShardedEngine::worker_loop(std::size_t shard) {
  bool poisoned = false;
  for (;;) {
    const Command command = inboxes_[shard]->pop();
    if (command.kind == Command::Kind::kStop) return;
    // A failed epoch (engine CHECK, job exception) must still acknowledge,
    // or the coordinator would wait on the barrier forever; the first
    // error is surrendered to the coordinator, which rethrows it. A
    // poisoned shard skips all further work but keeps acking.
    if (!poisoned) {
      try {
        for (std::size_t m = shard; m < engines_.size(); m += shards_) {
          if (command.kind == Command::Kind::kDrain) {
            engines_[m]->run();
          } else if (command.kind == Command::Kind::kBatch) {
            // One barrier, many epochs: walk the member through every
            // boundary in order (the inner loop keeps the member's heap
            // hot instead of re-touching every member per boundary), then
            // optionally drain it.
            for (std::size_t s = 0; s < command.n_steps; ++s)
              engines_[m]->run_until_before(command.steps[s].t,
                                            command.steps[s].priority);
            if (command.drain_after) engines_[m]->run();
          } else {
            engines_[m]->run_until_before(command.t, command.priority);
          }
        }
        if (command.run_job && job_ != nullptr) (*job_)(shard);
      } catch (...) {
        poisoned = true;
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
    // Release our window's writes to the coordinator; notify only when we
    // are the last shard (the coordinator parks on ack_cv_ after a bounded
    // spin).
    if (acks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::lock_guard<std::mutex> lock(ack_mutex_); }
      ack_cv_.notify_one();
    }
  }
}

void ShardedEngine::broadcast_and_wait(const Command& command) {
  MBTS_CHECK_MSG(started_ && !stopped_,
                 "sharded engine is not running (call start())");
  ++barriers_;
  acks_.store(shards_, std::memory_order_relaxed);
  for (auto& inbox : inboxes_) inbox->push(command);
  // Spin briefly (hot path on multi-core hosts), then park.
  for (int spin = 0; spin < 128; ++spin) {
    if (acks_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
  std::unique_lock<std::mutex> lock(ack_mutex_);
  ack_cv_.wait(lock,
               [this] { return acks_.load(std::memory_order_acquire) == 0; });
}

void ShardedEngine::rethrow_pending_error() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardedEngine::advance_all(double t, int priority, const EpochJob* job) {
  Command command;
  command.kind = Command::Kind::kAdvance;
  command.t = t;
  command.priority = priority;
  command.run_job = job != nullptr;
  ++epoch_;
  job_ = job;
  broadcast_and_wait(command);
  job_ = nullptr;
  rethrow_pending_error();
}

void ShardedEngine::batch_all(const BatchStep* steps, std::size_t n,
                              bool drain_after) {
  MBTS_CHECK_MSG(steps != nullptr || n == 0, "null batch step list");
  Command command;
  command.kind = Command::Kind::kBatch;
  command.steps = steps;
  command.n_steps = n;
  command.drain_after = drain_after;
  epoch_ += n + static_cast<std::uint64_t>(drain_after);
  broadcast_and_wait(command);
  rethrow_pending_error();
}

void ShardedEngine::drain_all() {
  Command command;
  command.kind = Command::Kind::kDrain;
  ++epoch_;
  broadcast_and_wait(command);
  rethrow_pending_error();
}

void ShardedEngine::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  Command command;
  command.kind = Command::Kind::kStop;
  for (auto& inbox : inboxes_) inbox->push(command);
  for (auto& worker : workers_) worker.get();
  workers_.clear();
  pool_.reset();
}

}  // namespace mbts
