// Deterministic discrete-event simulation engine.
//
// Events are (time, priority, sequence, callback) tuples ordered by time,
// then priority (lower first), then insertion sequence, so simultaneous
// events execute in a well-defined order and runs are bit-reproducible.
//
// Priorities matter for correctness of the task service: a completion at
// time t must free its processor before an arrival at t is scheduled, or the
// arrival would wrongly observe a full cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mbts {

/// Canonical event priorities (lower runs first at equal time).
enum class EventPriority : int {
  kCompletion = 0,  // free resources first
  kArrival = 10,    // then admit new work
  kDispatch = 15,   // then run one dispatch over the settled state
  kControl = 20,    // periodic probes, snapshots
};

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class SimEngine {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return next_seq_; }

  /// Schedules cb at absolute time t (>= now). Returns a cancellation id.
  EventId schedule_at(double t, EventPriority priority, Callback cb);

  /// Schedules cb after a delay (>= 0).
  EventId schedule_after(double delay, EventPriority priority, Callback cb);

  /// Cancels a pending event; returns false if already fired or cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the final clock.
  double run();

  /// Runs until the queue drains or the clock would pass t_end; events at
  /// t > t_end stay queued and now() is advanced to t_end.
  double run_until(double t_end);

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

 private:
  struct Event {
    double t;
    int priority;
    std::uint64_t seq;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Event& out);

  enum class EventState : unsigned char { kPending, kCancelled, kDone };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Per-event lifecycle, indexed by id; cancelled events are lazily dropped
  // when popped.
  std::vector<EventState> state_;
};

}  // namespace mbts
