// Deterministic discrete-event simulation engine.
//
// Events are (time, priority, sequence, callback) tuples ordered by time,
// then priority (lower first), then insertion sequence, so simultaneous
// events execute in a well-defined order and runs are bit-reproducible.
//
// Priorities matter for correctness of the task service: a completion at
// time t must free its processor before an arrival at t is scheduled, or the
// arrival would wrongly observe a full cluster.
//
// Cancellation is lazy: a cancelled event stays in the heap as a tombstone
// and is dropped when it reaches the top. When tombstones outnumber live
// events the heap is compacted in one O(n) sweep, so preemption-heavy
// million-event runs stay bounded in both heap size and per-event cost.
// Per-event lifecycle state lives in a sliding window over event ids whose
// retired prefix is reclaimed as events fire, so memory tracks the number of
// *outstanding* events rather than the number ever scheduled.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace mbts {

/// Canonical event priorities (lower runs first at equal time).
enum class EventPriority : int {
  kCompletion = 0,  // free resources first
  kFault = 5,       // crash/recover sites: a task completing at the crash
                    // instant has completed; a bid arriving then sees the
                    // site down
  kArrival = 10,    // then admit new work
  kDispatch = 15,   // then run one dispatch over the settled state
  kControl = 20,    // periodic probes, snapshots
};

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Observation hook over the engine's event lifecycle. A differential
/// checker (src/oracle/event_checker.hpp) attaches one to replay the exact
/// schedule/cancel/execute stream through a naive reference queue and assert
/// the heap + tombstone + compaction machinery popped the true minimum every
/// time. Detached (the default) the engine pays one null-pointer test per
/// operation.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_schedule(EventId id, double t, int priority) = 0;
  virtual void on_cancel(EventId id) = 0;
  virtual void on_execute(EventId id, double t, int priority) = 0;
};

class SimEngine {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return next_seq_; }

  /// Schedules cb at absolute time t (>= now). Returns a cancellation id.
  EventId schedule_at(double t, EventPriority priority, Callback cb);

  /// Schedules cb after a delay (>= 0).
  EventId schedule_after(double delay, EventPriority priority, Callback cb);

  /// Cancels a pending event; returns false if already fired or cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the final clock.
  double run();

  /// Runs until the queue drains or the next live event lies beyond t_end;
  /// events at t > t_end stay queued and now() is advanced to exactly t_end.
  /// The clock never runs backwards and no event with t > t_end executes.
  double run_until(double t_end);

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Attaches (or, with nullptr, detaches) a lifecycle observer. The
  /// observer is not owned and must outlive the engine or be detached first.
  void set_observer(EventObserver* observer) { observer_ = observer; }

  /// Cancelled events still buried in the heap (observability/testing).
  std::size_t tombstones() const { return tombstones_; }
  /// Heap slots currently allocated, live + tombstones (observability).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  /// Heap entries are plain 24-byte keys (the id doubles as the insertion
  /// sequence); the callback lives in the state window instead, so heap
  /// sifts move PODs rather than std::function objects.
  struct Event {
    double t;
    int priority;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.id > b.id;
    }
  };

  enum class EventState : unsigned char { kPending, kCancelled, kDone };
  struct EventRecord {
    EventState status = EventState::kPending;
    Callback cb;
  };

  /// Drops cancelled tombstones off the heap top; returns the next live
  /// event (still owned by the heap) or nullptr when drained.
  const Event* peek_next();
  /// Removes all tombstones and re-heapifies (O(n)); called when tombstones
  /// exceed half the heap.
  void compact();

  EventState state_of(EventId id) const {
    return id < state_base_
               ? EventState::kDone
               : state_[static_cast<std::size_t>(id - state_base_)].status;
  }
  EventRecord& record_of(EventId id) {
    return state_[static_cast<std::size_t>(id - state_base_)];
  }
  /// Marks an event finished and reclaims the retired prefix of the window.
  void retire(EventId id);

  double now_ = 0.0;
  EventObserver* observer_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<Event> heap_;  // binary heap ordered by Later
  // Sliding per-event lifecycle window: the record of event id lives at
  // state_[id - state_base_]; ids below state_base_ are all kDone.
  std::deque<EventRecord> state_;
  EventId state_base_ = 0;
};

}  // namespace mbts
