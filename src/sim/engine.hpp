// Deterministic discrete-event simulation engine.
//
// Events are (time, priority, sequence) keys ordered by time, then priority
// (lower first), then insertion sequence, so simultaneous events execute in
// a well-defined order and runs are bit-reproducible.
//
// Priorities matter for correctness of the task service: a completion at
// time t must free its processor before an arrival at t is scheduled, or the
// arrival would wrongly observe a full cluster.
//
// The core is allocation-free in steady state:
//
//  - Events are *typed*: a scheduled event is an (EventKind, EventPayload)
//    pair — a tagged POD of at most three machine words — dispatched through
//    a fixed per-engine handler table. Subsystems (scheduler, market,
//    broker, fault injector, probe) register one handler function per kind
//    and point payloads at arena-backed state instead of heap-allocating a
//    closure per event. A type-erased `std::function` path (EventKind::
//    kClosure) remains for tests and tools; its closures live in a slab
//    with free-list reuse, so even that path stops allocating once warm.
//  - Per-event lifecycle records live in a power-of-two ring buffer indexed
//    by event id; the retired prefix is reclaimed as events fire, so memory
//    tracks the number of *outstanding* events and the buffer is reused
//    forever once it has grown to the high-water mark.
//  - The priority queue is a 4-ary min-heap of 16-byte entries (time plus a
//    packed priority|sequence key): four children share one cache line and
//    the tree is half the height of a binary heap, so sift-downs — the cost
//    of every pop — touch half the lines. Cancellation is a pluggable
//    backend (QueueBackend):
//      * kTombstone — lazy cancellation: a cancelled event stays buried as
//        a 16-byte tombstone and is dropped when it surfaces, or in one
//        O(n) sweep once tombstones outnumber live events. O(1) cancel,
//        heap size bounded by 2x live.
//      * kIndexed — tracks each event's heap slot in its lifecycle record,
//        giving true O(log n) in-place cancellation and a tombstone-free
//        heap, at the price of a back-pointer update per sift step.
//    Both backends pop the exact (time, priority, id) minimum, so event
//    order — and therefore every seeded run — is bit-identical across them;
//    the stats_fingerprint goldens and diff_fuzz enforce that per backend.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mbts {

/// Canonical event priorities (lower runs first at equal time).
enum class EventPriority : int {
  kCompletion = 0,  // free resources first
  kFault = 5,       // crash/recover sites: a task completing at the crash
                    // instant has completed; a bid arriving then sees the
                    // site down
  kArrival = 10,    // then admit new work
  kDispatch = 15,   // then run one dispatch over the settled state
  kControl = 20,    // periodic probes, snapshots
};

/// Semantic kind of a typed event; selects the handler that runs it. Kinds
/// group into the six event families of the simulator (completion, fault,
/// arrival, dispatch, control/probe, retry-after-quote-timeout) plus the
/// type-erased closure fallback.
enum class EventKind : std::uint8_t {
  kClosure = 0,      // slab-backed std::function (tests, tools, examples)
  kTaskCompletion,   // SiteScheduler: task `a` finished on site `target`
  kDispatch,         // SiteScheduler: coalesced dispatch pass
  kTaskArrival,      // SiteScheduler::inject: submit arena task `a`
  kMarketBid,        // Market::inject: broker negotiation of arena bid `a`
  kBrokerRetry,      // Broker: backoff retry round for retry slot `a`
  kMarketRebid,      // Market: re-bid of breached-contract slot `a`
  kFaultDown,        // FaultInjector: outage `a` begins
  kFaultUp,          // FaultInjector: outage `a` ends
  kProbe,            // PeriodicProbe sample
};
inline constexpr std::size_t kNumEventKinds = 10;

/// POD argument block of a typed event. `target` is the handler's context
/// (the subsystem object that scheduled it); `a`/`b` are kind-specific
/// scalars — a task id, an arena slot, a flag word. Payloads are copied into
/// the engine's record ring, so they must stay valid by value: pointers in
/// payloads must outlive the event (arena rule: see DESIGN.md §6).
struct EventPayload {
  void* target = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class SimEngine;

/// One entry in the fixed handler table: runs a typed event. Handlers are
/// plain functions (no state beyond the payload and their target object), so
/// dispatch is one indexed load and an indirect call.
using EventHandler = void (*)(SimEngine&, const EventPayload&);

/// Snapshot of one queued event as reported by peek_next_events: enough for
/// a coordinator to classify the upcoming window (time, priority, kind) and
/// to route it (payload) without executing anything.
struct PeekedEvent {
  double t = 0.0;
  int priority = 0;
  EventKind kind = EventKind::kClosure;
  EventPayload payload;
};

/// Event-queue implementation backing a SimEngine (see file comment).
enum class QueueBackend : std::uint8_t {
  kTombstone = 0,  // binary heap + lazy tombstone cancellation (default)
  kIndexed = 1,    // indexed 4-ary heap, O(log n) in-place cancellation
};

std::string to_string(QueueBackend backend);

/// Parses a backend name as accepted by the MBTS_QUEUE_BACKEND environment
/// variable. Tolerant of surrounding whitespace and letter case
/// ("Indexed", "  TOMBSTONE\n"); returns nullopt for anything else,
/// including the empty/blank string (callers decide the fallback).
std::optional<QueueBackend> parse_queue_backend(std::string_view name);

/// Observation hook over the engine's event lifecycle. A differential
/// checker (src/oracle/event_checker.hpp) attaches one to replay the exact
/// schedule/cancel/execute stream through a naive reference queue and assert
/// the active queue backend popped the true minimum every time, with the
/// kind it was scheduled under. Detached (the default) the engine pays one
/// null-pointer test per operation.
class EventObserver {
 public:
  virtual ~EventObserver() = default;
  virtual void on_schedule(EventId id, double t, int priority,
                           EventKind kind) = 0;
  virtual void on_cancel(EventId id) = 0;
  virtual void on_execute(EventId id, double t, int priority,
                          EventKind kind) = 0;
};

class SimEngine {
 public:
  using Callback = std::function<void()>;

  /// Uses the process-wide default backend (MBTS_QUEUE_BACKEND env var or
  /// set_default_backend; tombstone when unset).
  SimEngine();
  explicit SimEngine(QueueBackend backend);

  /// The backend new engines default to. Resolved once from the
  /// MBTS_QUEUE_BACKEND environment variable ("tombstone" | "indexed");
  /// set_default_backend overrides it programmatically (tests sweep both).
  static QueueBackend default_backend();
  static void set_default_backend(QueueBackend backend);
  /// Test-only: forgets the cached env resolution so the next
  /// default_backend() re-reads MBTS_QUEUE_BACKEND.
  static void reset_default_backend_for_test();

  QueueBackend backend() const { return backend_; }

  double now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return next_seq_; }

  /// Registers the handler for a typed event kind. Idempotent: registering
  /// the same function again is a no-op; registering a *different* function
  /// for an occupied kind throws (two subsystems fighting over a kind).
  void register_handler(EventKind kind, EventHandler handler);

  /// Schedules a typed event at absolute time t (>= now). The kind's
  /// handler must already be registered. Returns a cancellation id.
  EventId schedule_event(double t, EventPriority priority, EventKind kind,
                         const EventPayload& payload);

  /// Schedules a typed event after a delay (>= 0).
  EventId schedule_event_after(double delay, EventPriority priority,
                               EventKind kind, const EventPayload& payload);

  /// Schedules cb at absolute time t (>= now) through the slab-backed
  /// closure path. Returns a cancellation id.
  EventId schedule_at(double t, EventPriority priority, Callback cb);

  /// Schedules cb after a delay (>= 0).
  EventId schedule_after(double delay, EventPriority priority, Callback cb);

  /// Cancels a pending event; returns false if already fired or cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the final clock.
  double run();

  /// Runs until the queue drains or the next live event lies beyond t_end;
  /// events at t > t_end stay queued and now() is advanced to exactly t_end.
  /// The clock never runs backwards and no event with t > t_end executes.
  double run_until(double t_end);

  /// Runs every event strictly before the (t, priority) boundary — i.e.
  /// events with time < t, plus events at exactly t whose priority is lower
  /// (runs-earlier) than `priority` — then advances now() to exactly t.
  /// This is the conservative window primitive of the sharded engine: a
  /// shard advanced to the boundary of a broker event has executed exactly
  /// the prefix the reference single-engine run would have executed before
  /// that event (cross-shard priorities are disjoint, so no tie straddles
  /// the boundary). Requires t >= now() and finite.
  double run_until_before(double t, int priority);

  /// Peeks the next live event without executing it. Returns false when the
  /// queue is drained; otherwise fills any non-null out-pointers with the
  /// event's time, priority, and kind.
  bool peek_next_event(double* t = nullptr, int* priority = nullptr,
                       EventKind* kind = nullptr);

  /// Copies the next (up to) `k` live events — in exact execution order —
  /// into `out` (cleared first) and returns how many were found. This is
  /// the conservative-window lookahead of the sharded coordinator: it
  /// classifies the upcoming event run (all-negotiation? fault-local?)
  /// before deciding how to synchronize the shards. Non-mutating apart
  /// from the same lazy tombstone skim peek_next_event performs; cost is
  /// O(k log k) candidate-heap steps over the 4-ary heap, independent of
  /// queue size.
  std::size_t peek_next_events(std::size_t k, std::vector<PeekedEvent>& out);

  /// Executes exactly the next live event (the one peek_next_event reports).
  /// Returns false when the queue is drained. run() is `while (step());`
  /// plus inlining; step() exists so a coordinator can interleave per-event
  /// execution with cross-engine synchronization.
  bool step();

  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  /// Attaches (or, with nullptr, detaches) a lifecycle observer. The
  /// observer is not owned and must outlive the engine or be detached first.
  void set_observer(EventObserver* observer) { observer_ = observer; }

  /// Test-only: fast-forwards the event-id counter to `next` so tests can
  /// pin the 48-bit id-exhaustion guard without scheduling 2^48 events.
  /// Requires an idle engine (no outstanding events) and a non-decreasing
  /// counter.
  void set_next_sequence_for_test(std::uint64_t next) {
    MBTS_CHECK_MSG(live_count_ == 0 && state_base_ == next_seq_,
                   "sequence fast-forward requires an idle engine");
    MBTS_CHECK_MSG(next >= next_seq_, "sequence counter cannot run backwards");
    next_seq_ = state_base_ = next;
  }

  /// Cancelled events still buried in the heap (always 0 on the indexed
  /// backend, which removes in place).
  std::size_t tombstones() const { return tombstones_; }
  /// Heap slots currently allocated, live + tombstones (observability).
  std::size_t heap_size() const { return heap_.size(); }

 private:
  /// Heap entries are 16-byte keys: the time plus priority and sequence id
  /// packed into one word (priority in the top 16 bits, id in the low 48),
  /// so the (priority, id) tie-break is a single integer compare and a
  /// 4-ary node's children fill exactly one cache line. Kind and payload
  /// live in the record ring instead, so heap sifts move PODs.
  struct Event {
    double t;
    std::uint64_t key;  // (priority << kSeqBits) | id
  };
  static constexpr unsigned kSeqBits = 48;
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;
  /// Cold failure path of the schedule_event id-exhaustion guard; out of
  /// line so the inline hot path carries no string-building code.
  [[noreturn]] static void throw_sequence_exhausted();
  static EventId id_of(const Event& ev) { return ev.key & kSeqMask; }
  static int priority_of(const Event& ev) {
    return static_cast<int>(ev.key >> kSeqBits);
  }
  /// Strict (t, priority, id) order — the execution order both backends pop.
  static bool sooner(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;
  }

  enum class EventState : std::uint8_t { kPending, kCancelled, kDone };
  static constexpr std::uint32_t kNoHeapPos = 0xFFFFFFFFu;

  /// Per-event lifecycle record: trivially copyable, lives in the id ring.
  struct EventRecord {
    EventPayload payload;
    std::uint32_t heap_pos = kNoHeapPos;  // indexed backend only
    EventKind kind = EventKind::kClosure;
    EventState status = EventState::kPending;
  };

  /// Drops cancelled tombstones off the heap top (tombstone backend);
  /// returns the next live event (still owned by the heap) or nullptr when
  /// drained.
  const Event* peek_next();
  /// Removes the event peek_next returned from the heap.
  void pop_top();
  /// Removes all tombstones and re-heapifies (O(n)); called when tombstones
  /// exceed half the heap (tombstone backend only).
  void compact();

  // 4-ary min-heap primitives, shared by both backends. kTrackPos mirrors
  // each entry's slot into its record (indexed backend) so cancellation can
  // find it; the tombstone backend instantiates the no-write variant.
  template <bool kTrackPos>
  void place(std::size_t pos, const Event& ev);
  template <bool kTrackPos>
  void sift_up(std::size_t pos);
  template <bool kTrackPos>
  void sift_down(std::size_t pos);
  /// Removes heap_[pos], restoring heap order and back-pointers (kIndexed).
  void idx_remove(std::size_t pos);

  EventState state_of(EventId id) const {
    return id < state_base_
               ? EventState::kDone
               : records_[static_cast<std::size_t>(id) & ring_mask_].status;
  }
  EventRecord& record_of(EventId id) {
    return records_[static_cast<std::size_t>(id) & ring_mask_];
  }
  /// Doubles the record ring, re-seating live records at their new slots.
  void grow_ring();
  /// Marks an event finished and reclaims the retired prefix of the window.
  void retire(EventId id);
  /// Releases a cancelled closure's slab slot (the callback is destroyed
  /// eagerly, exactly like the pre-typed engine released its std::function).
  void release_if_closure(EventRecord& record);

  /// The executed-event tail of run()/run_until(): pops the peeked top,
  /// retires the record, and dispatches through the handler table.
  void execute(const Event& top);

  static void run_closure(SimEngine& engine, const EventPayload& payload);

  QueueBackend backend_;
  double now_ = 0.0;
  EventObserver* observer_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::size_t tombstones_ = 0;
  std::vector<Event> heap_;  // 4-ary min-heap (sooner), both backends
  std::array<EventHandler, kNumEventKinds> handlers_{};

  // Sliding per-event lifecycle window: the record of event id lives at
  // records_[id & ring_mask_]; ids below state_base_ are all kDone. The ring
  // holds next_seq_ - state_base_ <= records_.size() outstanding records.
  std::vector<EventRecord> records_;
  std::size_t ring_mask_ = 0;
  EventId state_base_ = 0;

  // Closure slab (EventKind::kClosure): slots are recycled through the free
  // list, so steady-state closure scheduling reuses warm std::functions. A
  // deque so growth appends blocks without move-constructing every
  // outstanding callback the way a vector reallocation would.
  std::deque<Callback> closures_;
  std::vector<std::uint32_t> free_closures_;
};

// --- Inline hot path --------------------------------------------------------
//
// schedule/cancel/pop are the per-event cost of every simulation run; they
// live here so call sites across the tree (scheduler completions, market
// bids, the benches) inline them instead of paying a call per event.

template <bool kTrackPos>
inline void SimEngine::place(std::size_t pos, const Event& ev) {
  heap_[pos] = ev;
  if constexpr (kTrackPos) {
    record_of(id_of(ev)).heap_pos = static_cast<std::uint32_t>(pos);
  }
}

template <bool kTrackPos>
inline void SimEngine::sift_up(std::size_t pos) {
  const Event ev = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!sooner(ev, heap_[parent])) break;
    place<kTrackPos>(pos, heap_[parent]);
    pos = parent;
  }
  place<kTrackPos>(pos, ev);
}

template <bool kTrackPos>
inline void SimEngine::sift_down(std::size_t pos) {
  const Event ev = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * 4 + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (sooner(heap_[c], heap_[best])) best = c;
    }
    if (!sooner(heap_[best], ev)) break;
    place<kTrackPos>(pos, heap_[best]);
    pos = best;
  }
  place<kTrackPos>(pos, ev);
}

inline void SimEngine::idx_remove(std::size_t pos) {
  MBTS_DCHECK(pos < heap_.size());
  const Event last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry itself
  place<true>(pos, last);
  sift_up<true>(pos);
  sift_down<true>(record_of(id_of(last)).heap_pos);
}

inline void SimEngine::retire(EventId id) {
  MBTS_DCHECK(id >= state_base_);
  record_of(id).status = EventState::kDone;
  // Reclaim the contiguous done prefix so the ring tracks outstanding
  // events, not total events ever scheduled.
  while (state_base_ < next_seq_ &&
         record_of(state_base_).status == EventState::kDone) {
    ++state_base_;
  }
}

inline void SimEngine::release_if_closure(EventRecord& record) {
  if (record.kind != EventKind::kClosure) return;
  const auto slot = static_cast<std::uint32_t>(record.payload.a);
  closures_[slot] = nullptr;  // destroy the captured state eagerly
  free_closures_.push_back(slot);
}

inline EventId SimEngine::schedule_event(double t, EventPriority priority,
                                         EventKind kind,
                                         const EventPayload& payload) {
  MBTS_CHECK_MSG(t >= now_, "cannot schedule event in the past");
  MBTS_CHECK_MSG(handlers_[static_cast<std::size_t>(kind)] != nullptr,
                 "no handler registered for this EventKind");
  if (next_seq_ - state_base_ == records_.size()) grow_ring();
  // Hard guard, not a DCHECK: one more id would collide with the packed
  // priority bits and silently corrupt (priority, id) heap ordering — and
  // sharded runs multiply per-process event counts, so exhaustion is a
  // real (if distant) failure mode. The throw lives out of line so this
  // hot inline path only pays one predictable branch.
  if (next_seq_ > kSeqMask) [[unlikely]] throw_sequence_exhausted();
  const EventId id = next_seq_++;
  MBTS_DCHECK(static_cast<int>(priority) >= 0 &&
              static_cast<int>(priority) < (1 << 16));
  EventRecord& record = record_of(id);
  record.payload = payload;
  record.heap_pos = kNoHeapPos;
  record.kind = kind;
  record.status = EventState::kPending;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(priority) << kSeqBits) | id;
  heap_.push_back(Event{t, key});
  if (backend_ == QueueBackend::kTombstone) {
    sift_up<false>(heap_.size() - 1);
  } else {
    sift_up<true>(heap_.size() - 1);
  }
  ++live_count_;
  if (observer_)
    observer_->on_schedule(id, t, static_cast<int>(priority), kind);
  return id;
}

inline EventId SimEngine::schedule_at(double t, EventPriority priority,
                                      Callback cb) {
  MBTS_CHECK_MSG(static_cast<bool>(cb), "event callback must be callable");
  std::uint32_t slot;
  if (!free_closures_.empty()) {
    slot = free_closures_.back();
    free_closures_.pop_back();
    closures_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(closures_.size());
    closures_.emplace_back(std::move(cb));
  }
  EventPayload payload;
  payload.a = slot;
  return schedule_event(t, priority, EventKind::kClosure, payload);
}

inline bool SimEngine::cancel(EventId id) {
  if (id >= next_seq_ || state_of(id) != EventState::kPending) return false;
  EventRecord& record = record_of(id);
  // The callback (if any) is released eagerly; the live count reflects real
  // work immediately so empty()/pending() stay truthful.
  release_if_closure(record);
  MBTS_DCHECK(live_count_ > 0);
  --live_count_;
  if (backend_ == QueueBackend::kTombstone) {
    // Only the 16-byte heap key stays as a tombstone. It is dropped when it
    // surfaces, or in bulk once tombstones dominate.
    record.status = EventState::kCancelled;
    ++tombstones_;
    if (observer_) observer_->on_cancel(id);
    // Sweep once tombstones reach two thirds of the heap: one linear pass
    // retires them all, instead of each paying a full sift-down when it
    // surfaces. peek_next has a second, lower-watermark trigger for drains.
    if (3 * tombstones_ >= 2 * heap_.size() && heap_.size() >= 64) compact();
  } else {
    const std::uint32_t pos = record.heap_pos;
    MBTS_DCHECK(pos != kNoHeapPos);
    record.heap_pos = kNoHeapPos;
    idx_remove(pos);
    retire(id);
    if (observer_) observer_->on_cancel(id);
  }
  return true;
}

inline const SimEngine::Event* SimEngine::peek_next() {
  if (backend_ == QueueBackend::kIndexed) {
    // No tombstones: the root is always live.
    return heap_.empty() ? nullptr : heap_.data();
  }
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (state_of(id_of(top)) != EventState::kCancelled) return &top;
    // A tombstone surfaced. If they make up half the heap, one bulk sweep
    // beats paying a root sift-down per tombstone as the drain skims them.
    // (Sweeping never reorders live events, so pops are unaffected.)
    if (2 * tombstones_ >= heap_.size() && heap_.size() >= 64) {
      compact();
      continue;
    }
    retire(id_of(top));
    pop_top();
    MBTS_DCHECK(tombstones_ > 0);
    --tombstones_;
  }
  return nullptr;
}

inline void SimEngine::pop_top() {
  MBTS_DCHECK(!heap_.empty());
  if (backend_ == QueueBackend::kTombstone) {
    const Event last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      sift_down<false>(0);
    }
  } else {
    record_of(id_of(heap_.front())).heap_pos = kNoHeapPos;
    idx_remove(0);
  }
}

inline void SimEngine::execute(const Event& top) {
  MBTS_DCHECK(top.t >= now_);
  now_ = top.t;
  const EventId id = id_of(top);
  const int priority = priority_of(top);
  const EventRecord& record = record_of(id);
  const EventKind kind = record.kind;
  // Copy before pop: the handler may schedule events and grow the ring.
  const EventPayload payload = record.payload;
  retire(id);
  pop_top();
  --live_count_;
  ++executed_;
  if (observer_) observer_->on_execute(id, now_, priority, kind);
  handlers_[static_cast<std::size_t>(kind)](*this, payload);
}

}  // namespace mbts
