// Deterministic fault injection for chaos experiments.
//
// A FaultPlan is a precomputed, seeded schedule of site outages: every
// stochastic choice (when a site fails, how long it stays down, whether a
// quote response is lost) is drawn from dedicated streams of the run's
// SeedSequence before or during the run in a fixed order, so a chaos run is
// exactly as bit-reproducible as a fault-free one. The FaultInjector plays a
// plan into a SimEngine, firing site-down/site-up hooks at EventPriority::
// kFault — after completions at the same instant (a task finishing at the
// crash instant has finished) and before arrivals (a bid at the crash
// instant sees the site down).
//
// The plan is data, not behaviour: tests hand-author plans to pin exact
// failure interleavings, experiments generate them from a rate/duration
// model, and an empty plan (or FaultConfig{} with rate 0) must leave every
// consumer bit-identical to a build without the injector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace mbts {

class TraceRecorder;

/// What happens to a site's in-flight (running) tasks when it crashes.
/// Queued-but-not-started tasks survive either way: the queue is durable
/// metadata, execution state is what an outage destroys.
enum class CrashMode {
  /// Running tasks are lost; their contracts are breached and settle at the
  /// task's penalty bound (paper §3's floor).
  kKill,
  /// Running tasks are checkpointed: executed service is preserved and the
  /// task re-enters the pending queue, resuming after recovery.
  kCheckpoint,
};

std::string to_string(CrashMode mode);

/// Knobs for generating a FaultPlan and for the in-run failure modes.
struct FaultConfig {
  /// Expected outages per site per unit of simulated time (Poisson process;
  /// 0 disables outages).
  double outage_rate = 0.0;
  /// Mean outage duration (exponential, truncated below at a small epsilon).
  double mean_outage = 200.0;
  /// Probability that any single quote response is lost in transit (the
  /// broker treats the site as unavailable for that poll).
  double quote_timeout_prob = 0.0;
  CrashMode crash_mode = CrashMode::kKill;
  /// Plan horizon: outages start strictly before this time. 0 lets the
  /// consumer derive it (Market uses the span of injected arrivals).
  double horizon = 0.0;
  /// Instantiate the injector even when every rate is zero. The zero-rate
  /// injector must be observationally invisible; tests use this to pin the
  /// fault path to the fault-free one bit-for-bit.
  bool force_enable = false;

  bool enabled() const {
    return outage_rate > 0.0 || quote_timeout_prob > 0.0 || force_enable;
  }
};

/// One scheduled outage of one site (site == index into the market's site
/// array). Recovery at up_at is always scheduled: a plan can take a site
/// down only if it also brings it back.
struct SiteOutage {
  SiteId site = 0;
  SimTime down_at = 0.0;
  SimTime up_at = 0.0;
};

/// A deterministic outage schedule: per-site non-overlapping intervals,
/// globally sorted by (down_at, site).
struct FaultPlan {
  std::vector<SiteOutage> outages;

  bool empty() const { return outages.empty(); }

  /// Samples a plan over [0, horizon): per site, exponential gaps at
  /// `outage_rate` and exponential durations at `mean_outage`, consumed from
  /// `rng` in site order so the plan is a pure function of (config, n_sites,
  /// horizon, rng state).
  static FaultPlan generate(const FaultConfig& config, std::size_t n_sites,
                            double horizon, Xoshiro256 rng);

  /// Validation for hand-authored plans: intervals ordered, positive, and
  /// non-overlapping per site. Returns an empty string when valid.
  std::string validate(std::size_t n_sites) const;
};

/// Plays a FaultPlan into an engine and answers per-poll quote-loss draws.
///
/// Hook order at one instant follows plan order; down/up transitions for the
/// same site never coincide (validate() rejects zero-length gaps between a
/// recovery and the next outage only if they overlap — touching intervals
/// fire recovery before the next outage because kFault events at equal time
/// run in schedule order and recoveries are scheduled first).
class FaultInjector {
 public:
  using DownHook = std::function<void(SiteId, const SiteOutage&)>;
  using UpHook = std::function<void(SiteId)>;

  /// `timeout_rng` feeds only the quote-loss draws; pass any stream when
  /// quote_timeout_prob is 0 (it is then never advanced).
  FaultInjector(SimEngine& engine, FaultPlan plan, std::size_t n_sites,
                double quote_timeout_prob, Xoshiro256 timeout_rng);

  /// Schedules every plan event. Call once, before the engine runs past the
  /// first outage; hooks fire at EventPriority::kFault.
  void arm(DownHook on_down, UpHook on_up);

  /// Draws one quote-loss decision for a poll of `site`. Never advances the
  /// rng when the configured probability is zero, so a zero-rate injector
  /// leaves the stream untouched. A down site's quotes are not additionally
  /// lost (the broker already sees it down); callers should check is_down
  /// first.
  bool quote_times_out(SiteId site);

  bool is_down(SiteId site) const { return down_[site]; }

  /// Optional observability: outage down/up transitions are recorded into
  /// `trace` as they fire. Recording never alters the plan or the rng
  /// streams, so a traced chaos run is bit-identical to an untraced one.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  const FaultPlan& plan() const { return plan_; }
  std::size_t outages_started() const { return outages_started_; }
  std::size_t quote_timeouts() const { return quote_timeouts_; }

 private:
  // Typed-event handlers (EventKind::kFaultDown / kFaultUp): payload.target
  // is the injector, payload.a indexes plan_.outages. The plan vector is
  // immutable after arm(), so the index stays valid for the run's lifetime
  // (the arena rule for payloads).
  static void handle_down(SimEngine& engine, const EventPayload& payload);
  static void handle_up(SimEngine& engine, const EventPayload& payload);

  SimEngine& engine_;
  FaultPlan plan_;
  double quote_timeout_prob_;
  Xoshiro256 timeout_rng_;
  TraceRecorder* trace_ = nullptr;
  DownHook on_down_;
  UpHook on_up_;
  std::vector<bool> down_;
  std::size_t outages_started_ = 0;
  std::size_t quote_timeouts_ = 0;
  bool armed_ = false;
};

}  // namespace mbts
