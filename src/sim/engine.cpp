#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace mbts {
namespace {

// Process-wide default backend: -1 = not yet resolved from the environment.
std::atomic<int> g_default_backend{-1};

constexpr std::size_t kMinRingSize = 64;

}  // namespace

std::string to_string(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kTombstone:
      return "tombstone";
    case QueueBackend::kIndexed:
      return "indexed";
  }
  return "unknown";
}

QueueBackend SimEngine::default_backend() {
  int cached = g_default_backend.load(std::memory_order_relaxed);
  if (cached < 0) {
    QueueBackend resolved = QueueBackend::kTombstone;
    if (const char* env = std::getenv("MBTS_QUEUE_BACKEND")) {
      const std::string_view name{env};
      if (name == "indexed") {
        resolved = QueueBackend::kIndexed;
      } else {
        MBTS_CHECK_MSG(name == "tombstone" || name.empty(),
                       "MBTS_QUEUE_BACKEND must be 'tombstone' or 'indexed'");
      }
    }
    cached = static_cast<int>(resolved);
    g_default_backend.store(cached, std::memory_order_relaxed);
  }
  return static_cast<QueueBackend>(cached);
}

void SimEngine::set_default_backend(QueueBackend backend) {
  g_default_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

SimEngine::SimEngine() : SimEngine(default_backend()) {}

SimEngine::SimEngine(QueueBackend backend) : backend_(backend) {
  records_.resize(kMinRingSize);
  ring_mask_ = kMinRingSize - 1;
  register_handler(EventKind::kClosure, &SimEngine::run_closure);
}

void SimEngine::register_handler(EventKind kind, EventHandler handler) {
  MBTS_CHECK_MSG(handler != nullptr, "null event handler");
  const auto slot = static_cast<std::size_t>(kind);
  MBTS_CHECK(slot < kNumEventKinds);
  MBTS_CHECK_MSG(handlers_[slot] == nullptr || handlers_[slot] == handler,
                 "conflicting handler registered for this EventKind");
  handlers_[slot] = handler;
}

void SimEngine::grow_ring() {
  // Duplicating the old ring into both halves of the doubled one re-seats
  // every record: id & (2n-1) is either id & (n-1) or that plus n, and both
  // slots now hold id's old record. Two straight memcpys instead of a
  // masked per-record loop.
  static_assert(std::is_trivially_copyable_v<EventRecord>);
  const std::size_t old_size = records_.size();
  records_.resize(old_size * 2);
  std::memcpy(records_.data() + old_size, records_.data(),
              old_size * sizeof(EventRecord));
  ring_mask_ = records_.size() - 1;
}

EventId SimEngine::schedule_event_after(double delay, EventPriority priority,
                                        EventKind kind,
                                        const EventPayload& payload) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_event(now_ + delay, priority, kind, payload);
}

EventId SimEngine::schedule_after(double delay, EventPriority priority,
                                  Callback cb) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, priority, std::move(cb));
}

void SimEngine::compact() {
  // Heap order is random with respect to ids, so every status lookup is a
  // scattered read into the record ring; prefetching a few entries ahead
  // hides that latency behind the scan itself.
  const std::size_t n = heap_.size();
  constexpr std::size_t kAhead = 16;
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__)
    if (i + kAhead < n) __builtin_prefetch(&record_of(id_of(heap_[i + kAhead])));
#endif
    const EventId id = id_of(heap_[i]);
    if (state_of(id) != EventState::kCancelled) {
      heap_[out++] = heap_[i];
    } else {
      retire(id);
    }
  }
  heap_.resize(out);
  // Floyd heapify: sift down every internal node, deepest first.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down<false>(i);
    }
  }
  tombstones_ = 0;
}

void SimEngine::run_closure(SimEngine& engine, const EventPayload& payload) {
  const auto slot = static_cast<std::uint32_t>(payload.a);
  // Move the callback out before invoking: the body may schedule new
  // closures, which recycles the slot (the move leaves it empty).
  Callback cb = std::move(engine.closures_[slot]);
  engine.free_closures_.push_back(slot);
  cb();
}

double SimEngine::run() {
  while (const Event* next = peek_next()) {
    execute(*next);
  }
  return now_;
}

double SimEngine::run_until(double t_end) {
  MBTS_CHECK(t_end >= now_);
  // Horizon check happens on the next *live* event: peek_next first skims
  // cancelled tombstones off the heap top, so a cancelled event at t <= t_end
  // can never smuggle a pending event with t > t_end past the boundary (the
  // old behavior executed it and then yanked the clock backwards to t_end).
  while (const Event* next = peek_next()) {
    if (next->t > t_end) break;
    execute(*next);
  }
  now_ = t_end;
  return now_;
}

}  // namespace mbts
