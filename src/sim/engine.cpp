#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/check.hpp"

namespace mbts {
namespace {

// Process-wide default backend: -1 = not yet resolved from the environment.
std::atomic<int> g_default_backend{-1};

constexpr std::size_t kMinRingSize = 64;

}  // namespace

std::string to_string(QueueBackend backend) {
  switch (backend) {
    case QueueBackend::kTombstone:
      return "tombstone";
    case QueueBackend::kIndexed:
      return "indexed";
  }
  return "unknown";
}

std::optional<QueueBackend> parse_queue_backend(std::string_view name) {
  // Trim surrounding whitespace, then compare case-insensitively: env vars
  // arrive from shell scripts and CI YAML, where "Indexed" or a trailing
  // newline are honest spellings of the same intent.
  while (!name.empty() &&
         std::isspace(static_cast<unsigned char>(name.front())))
    name.remove_prefix(1);
  while (!name.empty() && std::isspace(static_cast<unsigned char>(name.back())))
    name.remove_suffix(1);
  if (name.size() > 16) return std::nullopt;
  std::string lowered(name);
  for (char& c : lowered)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lowered == "tombstone") return QueueBackend::kTombstone;
  if (lowered == "indexed") return QueueBackend::kIndexed;
  return std::nullopt;
}

QueueBackend SimEngine::default_backend() {
  int cached = g_default_backend.load(std::memory_order_relaxed);
  if (cached < 0) {
    // Precedence: SimEngine(backend) beats set_default_backend beats the
    // environment variable beats the tombstone fallback. The env var is
    // resolved once per process; a blank value means "unset".
    QueueBackend resolved = QueueBackend::kTombstone;
    if (const char* env = std::getenv("MBTS_QUEUE_BACKEND")) {
      const std::string_view raw{env};
      const std::optional<QueueBackend> parsed = parse_queue_backend(raw);
      const bool blank =
          raw.find_first_not_of(" \t\r\n\f\v") == std::string_view::npos;
      MBTS_CHECK_MSG(parsed.has_value() || blank,
                     "MBTS_QUEUE_BACKEND must be 'tombstone' or 'indexed', "
                     "got '" + std::string(raw) + "'");
      if (parsed) resolved = *parsed;
    }
    cached = static_cast<int>(resolved);
    g_default_backend.store(cached, std::memory_order_relaxed);
  }
  return static_cast<QueueBackend>(cached);
}

void SimEngine::throw_sequence_exhausted() {
  detail::check_fail("next_seq_ <= kSeqMask", __FILE__, __LINE__,
                     "48-bit event-id space exhausted; sequence wrap would "
                     "corrupt (priority, id) event ordering");
}

void SimEngine::reset_default_backend_for_test() {
  g_default_backend.store(-1, std::memory_order_relaxed);
}

void SimEngine::set_default_backend(QueueBackend backend) {
  g_default_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

SimEngine::SimEngine() : SimEngine(default_backend()) {}

SimEngine::SimEngine(QueueBackend backend) : backend_(backend) {
  records_.resize(kMinRingSize);
  ring_mask_ = kMinRingSize - 1;
  register_handler(EventKind::kClosure, &SimEngine::run_closure);
}

void SimEngine::register_handler(EventKind kind, EventHandler handler) {
  MBTS_CHECK_MSG(handler != nullptr, "null event handler");
  const auto slot = static_cast<std::size_t>(kind);
  MBTS_CHECK(slot < kNumEventKinds);
  MBTS_CHECK_MSG(handlers_[slot] == nullptr || handlers_[slot] == handler,
                 "conflicting handler registered for this EventKind");
  handlers_[slot] = handler;
}

void SimEngine::grow_ring() {
  // Duplicating the old ring into both halves of the doubled one re-seats
  // every record: id & (2n-1) is either id & (n-1) or that plus n, and both
  // slots now hold id's old record. Two straight memcpys instead of a
  // masked per-record loop.
  static_assert(std::is_trivially_copyable_v<EventRecord>);
  const std::size_t old_size = records_.size();
  records_.resize(old_size * 2);
  std::memcpy(records_.data() + old_size, records_.data(),
              old_size * sizeof(EventRecord));
  ring_mask_ = records_.size() - 1;
}

EventId SimEngine::schedule_event_after(double delay, EventPriority priority,
                                        EventKind kind,
                                        const EventPayload& payload) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_event(now_ + delay, priority, kind, payload);
}

EventId SimEngine::schedule_after(double delay, EventPriority priority,
                                  Callback cb) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, priority, std::move(cb));
}

void SimEngine::compact() {
  // Heap order is random with respect to ids, so every status lookup is a
  // scattered read into the record ring; prefetching a few entries ahead
  // hides that latency behind the scan itself.
  const std::size_t n = heap_.size();
  constexpr std::size_t kAhead = 16;
  std::size_t out = 0;
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__)
    if (i + kAhead < n) __builtin_prefetch(&record_of(id_of(heap_[i + kAhead])));
#endif
    const EventId id = id_of(heap_[i]);
    if (state_of(id) != EventState::kCancelled) {
      heap_[out++] = heap_[i];
    } else {
      retire(id);
    }
  }
  heap_.resize(out);
  // Floyd heapify: sift down every internal node, deepest first.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down<false>(i);
    }
  }
  tombstones_ = 0;
}

void SimEngine::run_closure(SimEngine& engine, const EventPayload& payload) {
  const auto slot = static_cast<std::uint32_t>(payload.a);
  // Move the callback out before invoking: the body may schedule new
  // closures, which recycles the slot (the move leaves it empty).
  Callback cb = std::move(engine.closures_[slot]);
  engine.free_closures_.push_back(slot);
  cb();
}

double SimEngine::run() {
  while (const Event* next = peek_next()) {
    execute(*next);
  }
  return now_;
}

double SimEngine::run_until_before(double t, int priority) {
  MBTS_CHECK_MSG(std::isfinite(t), "boundary time must be finite (use run())");
  MBTS_CHECK_MSG(t >= now_, "boundary lies in the past");
  // Strictly-before semantics: an event at exactly (t, priority) is the
  // boundary event itself and stays queued — it belongs to the coordinator,
  // not this window.
  while (const Event* next = peek_next()) {
    if (next->t > t || (next->t == t && priority_of(*next) >= priority)) break;
    execute(*next);
  }
  now_ = t;
  return now_;
}

bool SimEngine::peek_next_event(double* t, int* priority, EventKind* kind) {
  const Event* next = peek_next();
  if (next == nullptr) return false;
  if (t != nullptr) *t = next->t;
  if (priority != nullptr) *priority = priority_of(*next);
  if (kind != nullptr) *kind = record_of(id_of(*next)).kind;
  return true;
}

std::size_t SimEngine::peek_next_events(std::size_t k,
                                        std::vector<PeekedEvent>& out) {
  out.clear();
  if (k == 0 || peek_next() == nullptr) return 0;  // skims top tombstones
  // Ordered traversal without disturbing the heap: a candidate frontier of
  // heap slots, popped in sooner() order; visiting a slot admits its 4-ary
  // children. Tombstones (tombstone backend) are expanded but not reported
  // — their children may still hold sooner live events than the rest of
  // the frontier. The frontier grows by at most three slots per visit.
  const auto later = [this](std::size_t a, std::size_t b) {
    return sooner(heap_[b], heap_[a]);
  };
  std::vector<std::size_t> frontier;
  frontier.push_back(0);
  while (!frontier.empty() && out.size() < k) {
    std::pop_heap(frontier.begin(), frontier.end(), later);
    const std::size_t pos = frontier.back();
    frontier.pop_back();
    const Event& ev = heap_[pos];
    const EventId id = id_of(ev);
    if (state_of(id) == EventState::kPending) {
      const EventRecord& record = record_of(id);
      out.push_back(
          PeekedEvent{ev.t, priority_of(ev), record.kind, record.payload});
    }
    const std::size_t first_child = pos * 4 + 1;
    const std::size_t last_child = std::min(first_child + 4, heap_.size());
    for (std::size_t c = first_child; c < last_child; ++c) {
      frontier.push_back(c);
      std::push_heap(frontier.begin(), frontier.end(), later);
    }
  }
  return out.size();
}

bool SimEngine::step() {
  const Event* next = peek_next();
  if (next == nullptr) return false;
  execute(*next);
  return true;
}

double SimEngine::run_until(double t_end) {
  MBTS_CHECK(t_end >= now_);
  // Horizon check happens on the next *live* event: peek_next first skims
  // cancelled tombstones off the heap top, so a cancelled event at t <= t_end
  // can never smuggle a pending event with t > t_end past the boundary (the
  // old behavior executed it and then yanked the clock backwards to t_end).
  while (const Event* next = peek_next()) {
    if (next->t > t_end) break;
    execute(*next);
  }
  now_ = t_end;
  return now_;
}

}  // namespace mbts
