#include "sim/engine.hpp"

#include "util/check.hpp"

namespace mbts {

EventId SimEngine::schedule_at(double t, EventPriority priority, Callback cb) {
  MBTS_CHECK_MSG(t >= now_, "cannot schedule event in the past");
  MBTS_CHECK_MSG(static_cast<bool>(cb), "event callback must be callable");
  const EventId id = next_seq_++;
  state_.push_back(EventState::kPending);
  queue_.push(Event{t, static_cast<int>(priority), id, id, std::move(cb)});
  ++live_count_;
  return id;
}

EventId SimEngine::schedule_after(double delay, EventPriority priority,
                                  Callback cb) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, priority, std::move(cb));
}

bool SimEngine::cancel(EventId id) {
  if (id >= state_.size() || state_[id] != EventState::kPending) return false;
  state_[id] = EventState::kCancelled;
  // The event object stays in the heap; it is skipped when popped. We still
  // decrement the live count so empty()/pending() reflect real work.
  MBTS_DCHECK(live_count_ > 0);
  --live_count_;
  return true;
}

bool SimEngine::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; we need to move the callback out, so
    // const_cast is confined here. The element is popped immediately after.
    Event& top = const_cast<Event&>(queue_.top());
    if (state_[top.id] == EventState::kCancelled) {
      state_[top.id] = EventState::kDone;
      queue_.pop();
      continue;
    }
    MBTS_DCHECK(state_[top.id] == EventState::kPending);
    state_[top.id] = EventState::kDone;
    out = std::move(top);
    queue_.pop();
    return true;
  }
  return false;
}

double SimEngine::run() {
  Event ev;
  while (pop_next(ev)) {
    MBTS_DCHECK(ev.t >= now_);
    now_ = ev.t;
    --live_count_;
    ++executed_;
    ev.cb();
  }
  return now_;
}

double SimEngine::run_until(double t_end) {
  MBTS_CHECK(t_end >= now_);
  Event ev;
  while (!queue_.empty()) {
    if (queue_.top().t > t_end) break;
    if (!pop_next(ev)) break;
    now_ = ev.t;
    --live_count_;
    ++executed_;
    ev.cb();
  }
  now_ = t_end;
  return now_;
}

}  // namespace mbts
