#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mbts {

namespace {
// Below this size a compaction sweep costs more than it saves.
constexpr std::size_t kMinCompactSize = 64;
}  // namespace

EventId SimEngine::schedule_at(double t, EventPriority priority, Callback cb) {
  MBTS_CHECK_MSG(t >= now_, "cannot schedule event in the past");
  MBTS_CHECK_MSG(static_cast<bool>(cb), "event callback must be callable");
  const EventId id = next_seq_++;
  state_.push_back(EventRecord{EventState::kPending, std::move(cb)});
  heap_.push_back(Event{t, static_cast<int>(priority), id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  if (observer_) observer_->on_schedule(id, t, static_cast<int>(priority));
  return id;
}

EventId SimEngine::schedule_after(double delay, EventPriority priority,
                                  Callback cb) {
  MBTS_CHECK_MSG(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, priority, std::move(cb));
}

void SimEngine::retire(EventId id) {
  MBTS_DCHECK(id >= state_base_);
  record_of(id).status = EventState::kDone;
  while (!state_.empty() && state_.front().status == EventState::kDone) {
    state_.pop_front();
    ++state_base_;
  }
}

bool SimEngine::cancel(EventId id) {
  if (id >= next_seq_ || state_of(id) != EventState::kPending) return false;
  EventRecord& record = record_of(id);
  record.status = EventState::kCancelled;
  // The callback is released eagerly; only the 24-byte heap key stays as a
  // tombstone. It is dropped when it surfaces, or in bulk once tombstones
  // dominate. The live count reflects real work immediately so
  // empty()/pending() stay truthful.
  record.cb = nullptr;
  MBTS_DCHECK(live_count_ > 0);
  --live_count_;
  ++tombstones_;
  if (observer_) observer_->on_cancel(id);
  if (tombstones_ > heap_.size() / 2 && heap_.size() >= kMinCompactSize)
    compact();
  return true;
}

void SimEngine::compact() {
  const auto keep = std::remove_if(heap_.begin(), heap_.end(), [&](Event& ev) {
    if (state_of(ev.id) != EventState::kCancelled) return false;
    retire(ev.id);
    return true;
  });
  heap_.erase(keep, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  tombstones_ = 0;
}

const SimEngine::Event* SimEngine::peek_next() {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (state_of(top.id) != EventState::kCancelled) return &top;
    retire(top.id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    MBTS_DCHECK(tombstones_ > 0);
    --tombstones_;
  }
  return nullptr;
}

double SimEngine::run() {
  Callback cb;
  while (const Event* next = peek_next()) {
    MBTS_DCHECK(next->t >= now_);
    now_ = next->t;
    const EventId id = next->id;
    const int priority = next->priority;
    cb = std::move(record_of(id).cb);
    retire(id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --live_count_;
    ++executed_;
    if (observer_) observer_->on_execute(id, now_, priority);
    cb();
  }
  return now_;
}

double SimEngine::run_until(double t_end) {
  MBTS_CHECK(t_end >= now_);
  Callback cb;
  // Horizon check happens on the next *live* event: peek_next first skims
  // cancelled tombstones off the heap top, so a cancelled event at t <= t_end
  // can never smuggle a pending event with t > t_end past the boundary (the
  // old behavior executed it and then yanked the clock backwards to t_end).
  while (const Event* next = peek_next()) {
    if (next->t > t_end) break;
    MBTS_DCHECK(next->t >= now_);
    now_ = next->t;
    const EventId id = next->id;
    const int priority = next->priority;
    cb = std::move(record_of(id).cb);
    retire(id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --live_count_;
    ++executed_;
    if (observer_) observer_->on_execute(id, now_, priority);
    cb();
  }
  now_ = t_end;
  return now_;
}

}  // namespace mbts
