#include "sim/probe.hpp"

#include "util/check.hpp"

namespace mbts {

PeriodicProbe::PeriodicProbe(SimEngine& engine, double interval,
                             Sampler sampler)
    : engine_(engine), interval_(interval), sampler_(std::move(sampler)) {
  MBTS_CHECK_MSG(interval_ > 0.0, "probe interval must be positive");
  MBTS_CHECK_MSG(static_cast<bool>(sampler_), "probe needs a sampler");
  engine_.register_handler(EventKind::kProbe, &PeriodicProbe::handle_probe);
  arm();
}

void PeriodicProbe::handle_probe(SimEngine& engine,
                                 const EventPayload& payload) {
  (void)engine;
  static_cast<PeriodicProbe*>(payload.target)->fire();
}

void PeriodicProbe::arm() {
  EventPayload payload;
  payload.target = this;
  next_event_ = engine_.schedule_event_after(
      interval_, EventPriority::kControl, EventKind::kProbe, payload);
  armed_ = true;
}

void PeriodicProbe::fire() {
  armed_ = false;
  if (stopped_) return;
  series_.add(engine_.now(), sampler_());
  // Reschedule only while the simulation has other live work; a probe must
  // never be the reason the engine keeps running.
  if (engine_.pending() > 0) arm();
}

void PeriodicProbe::stop() {
  stopped_ = true;
  if (armed_) {
    engine_.cancel(next_event_);
    armed_ = false;
  }
}

}  // namespace mbts
