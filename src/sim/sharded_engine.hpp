// Sharded multi-engine execution with conservative time-windowed sync.
//
// A ShardedEngine owns one SimEngine per *member* (the market layer makes
// one member per site) and partitions members round-robin across a fixed
// set of shard worker threads (one dedicated ThreadPool worker per shard).
// A single coordinator thread (the caller) owns a separate "global" engine
// — in the market this is the broker's engine, holding every cross-member
// event: bid arrivals, retry rounds, re-bids, fault transitions.
//
// Execution alternates between two phases:
//
//  - Parallel window: the coordinator broadcasts an epoch command through
//    per-shard SPSC mailboxes; every shard advances each of its member
//    engines up to — but strictly before — the boundary (t, priority) of
//    the next global event (SimEngine::run_until_before), optionally runs
//    an epoch job (e.g. computing one site's quotes for the bid about to
//    negotiate), and acknowledges. The coordinator blocks until all shards
//    have acknowledged.
//  - Serial sync point: with every shard parked in its mailbox wait, the
//    coordinator executes exactly one global event. Its handler may freely
//    read and mutate member state (quote, award, crash, recover) and
//    schedule into member engines: the mailbox handshake's release/acquire
//    pairs make all shard-side writes visible here, and all coordinator
//    writes visible to the shards' next window.
//
// The ownership the barrier grants is open-ended: until the next
// broadcast, the coordinator may execute any number of global events
// inline — including advancing member engines itself — with no further
// synchronization. The market's epoch-batching run loop exploits this to
// collapse long negotiation runs to zero barriers, and batch_all() lets a
// single barrier walk every member through a whole boundary list (see
// DESIGN.md §8, "Epoch batching").
//
// Determinism: member engines never talk to each other — they interact
// only through global events — and the global/member event priorities are
// disjoint (kFault/kArrival vs kCompletion/kDispatch/kControl), so the
// (t, priority) boundary is never a tie across the shard seam. Each member
// engine therefore executes exactly the subsequence of the reference
// single-engine schedule that belongs to it, in the same order, with the
// same clock readings, and a sharded run is bit-identical to the reference
// for any shard count. See DESIGN.md §8 for the full argument.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/engine.hpp"
#include "util/spsc.hpp"
#include "util/thread_pool.hpp"

namespace mbts {

class ShardedEngine {
 public:
  /// The per-shard work run inside an epoch after the member engines have
  /// advanced to the boundary. Receives the shard index; runs concurrently
  /// with other shards' jobs (never with the coordinator).
  using EpochJob = std::function<void(std::size_t shard)>;

  /// Creates `members` engines (all on `backend`) partitioned over
  /// `shards` workers; member i belongs to shard i % shards. Workers are
  /// not started yet: build the member objects (sites) against the engines
  /// first, then call start().
  ShardedEngine(std::size_t shards, std::size_t members, QueueBackend backend);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shards() const { return shards_; }
  std::size_t members() const { return engines_.size(); }
  std::size_t shard_of(std::size_t member) const { return member % shards_; }
  SimEngine& member_engine(std::size_t member) { return *engines_[member]; }

  /// Spawns the shard workers (dedicated ThreadPool workers). Must be
  /// called once, before the first epoch; until then the coordinator may
  /// touch member engines freely (construction, injection).
  void start();

  /// One conservative window: every member engine advances strictly before
  /// the (t, priority) boundary, then `job` (when non-null) runs once per
  /// shard. Blocks until every shard has acknowledged; on return the
  /// coordinator again owns all member state. Boundaries must be
  /// non-decreasing across epochs.
  void advance_all(double t, int priority, const EpochJob* job = nullptr);

  /// One boundary of a batched command (see batch_all).
  struct BatchStep {
    double t = 0.0;
    int priority = 0;
  };

  /// Batched window: a single barrier carries a whole list of boundaries.
  /// Every member engine advances through steps[0..n) in order (each a
  /// run_until_before), then — when `drain_after` — runs to completion.
  /// The steps must be non-decreasing boundaries and the array must stay
  /// valid until this call returns (the command carries the pointer, not a
  /// copy, so the mailbox payload stays a three-word POD). One barrier, one
  /// ack round, however many epochs the list spans.
  void batch_all(const BatchStep* steps, std::size_t n,
                 bool drain_after = false);

  /// Final phase: every member engine runs to completion (no boundary).
  /// Blocks until done; typically followed by stop().
  void drain_all();

  /// Parks and joins the shard workers. Idempotent; the destructor calls
  /// it. After stop() the coordinator owns all member state again.
  void stop();

  /// Boundary advances executed so far (observability): one per
  /// advance_all/drain_all, n (+1 with drain_after) per batch_all of n
  /// steps.
  std::uint64_t epochs() const { return epoch_; }
  /// Barrier rounds so far: every broadcast (advance, batch, or drain) costs
  /// exactly one ack barrier, so this is the synchronization count the
  /// epoch-batching work amortizes. A batch_all of n boundaries moves this
  /// by one while a loop of advance_all calls would move it by n.
  std::uint64_t barriers() const { return barriers_; }

 private:
  struct Command {
    enum class Kind : std::uint8_t { kAdvance, kBatch, kDrain, kStop };
    Kind kind = Kind::kAdvance;
    double t = 0.0;
    int priority = 0;
    bool run_job = false;
    // kBatch only: boundary list, coordinator-owned for the duration of the
    // barrier (same lifetime rule as job_). Kept inline so Command stays a
    // trivially copyable mailbox payload.
    const BatchStep* steps = nullptr;
    std::size_t n_steps = 0;
    bool drain_after = false;
  };

  void worker_loop(std::size_t shard);
  void broadcast_and_wait(const Command& command);
  /// Rethrows (once) the first exception any shard raised during an epoch.
  void rethrow_pending_error();

  std::size_t shards_;
  std::vector<std::unique_ptr<SimEngine>> engines_;
  // Mailboxes live behind unique_ptr so the vector never relocates a
  // mutex/condvar while a worker waits on it.
  std::vector<std::unique_ptr<SpscMailbox<Command>>> inboxes_;
  // The epoch barrier: workers decrement with release order once their
  // window is done; the coordinator spins-then-parks until zero, acquiring
  // every shard's writes. Guarded by the mailbox for the forward direction.
  std::atomic<std::size_t> acks_{0};
  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;
  // First exception raised by any shard during an epoch; rethrown to the
  // coordinator at the end of that advance/drain call.
  std::mutex error_mutex_;
  std::exception_ptr error_;

  const EpochJob* job_ = nullptr;  // valid only while an epoch is in flight
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
  std::uint64_t epoch_ = 0;
  std::uint64_t barriers_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace mbts
