// Periodic measurement probes for simulations.
//
// A probe samples a callback at a fixed simulated-time interval. Probes
// must not keep the simulation alive artificially, so a probe reschedules
// itself only while other work is still queued: when the probe's own event
// is the last one in the engine, it stops. Samples land in a SampledSeries
// for later analysis or CSV export.
#pragma once

#include <functional>

#include "sim/engine.hpp"
#include "stats/timeseries.hpp"

namespace mbts {

class PeriodicProbe {
 public:
  using Sampler = std::function<double()>;

  /// Samples `sampler` every `interval` starting at engine.now() +
  /// interval. The probe object must outlive the engine run.
  PeriodicProbe(SimEngine& engine, double interval, Sampler sampler);

  /// Stops future samples (already-scheduled one is cancelled).
  void stop();

  const SampledSeries& series() const { return series_; }
  std::size_t samples() const { return series_.size(); }

 private:
  // Typed-event handler (EventKind::kProbe): payload.target is the probe.
  static void handle_probe(SimEngine& engine, const EventPayload& payload);

  void arm();
  void fire();

  SimEngine& engine_;
  double interval_;
  Sampler sampler_;
  SampledSeries series_;
  EventId next_event_ = 0;
  bool armed_ = false;
  bool stopped_ = false;
};

}  // namespace mbts
