// Client-side selection among competing server quotes (paper §2, Fig. 1).
//
// The negotiation is two-phase and sealed-bid: the broker fans the client's
// bid out to every site, collects quotes, picks a winner by the client's
// strategy, and awards the contract. Since the bid is a full value function,
// one exchange suffices.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "market/client.hpp"
#include "market/contract.hpp"
#include "market/site_agent.hpp"
#include "util/rng.hpp"

namespace mbts {

/// How a client ranks the accepted quotes.
enum class ClientStrategy {
  /// Highest expected price — since the price equals the client's own value
  /// function at the expected completion, this is also the client-optimal
  /// choice under truthful bidding.
  kMaxExpectedValue,
  /// Earliest expected completion (latency-sensitive clients).
  kEarliestCompletion,
  /// Uniform random among accepting sites (load-spreading floor).
  kRandom,
};

std::string to_string(ClientStrategy strategy);

/// How the contract price is derived from the winning quote (§2).
enum class PricingModel {
  /// Price equals the winner's own quoted expected value ("client bid value
  /// and price are equivalent").
  kBidPrice,
  /// Vickrey-style: the winner's price is set by the runner-up accepted
  /// quote, giving sites an incentive to quote truthfully (as in Spawn).
  /// With a single accepting site the winner's own quote binds.
  kSecondPrice,
};

std::string to_string(PricingModel model);

/// Result of one negotiation round for a bid.
struct NegotiationResult {
  Bid bid;
  std::vector<Quote> quotes;          // one per site polled
  std::optional<SiteId> awarded_site; // empty: every site rejected
  /// True when a site would have taken the task but the client's budget
  /// could not cover the agreed price (§2's per-interval budgets).
  bool unaffordable = false;
};

/// Stateless selection: returns the index into `quotes` of the winner, or
/// nullopt if no quote was accepted.
std::optional<std::size_t> select_quote(const std::vector<Quote>& quotes,
                                        ClientStrategy strategy,
                                        Xoshiro256& rng);

/// Runs one full negotiation for `bid` across `sites` (poll, select, award).
/// On award failure (site state changed) falls through to the next-best
/// quote. Appends the outcome to `results` history.
class Broker {
 public:
  /// `ledger` (optional, not owned) enforces client budgets: the winning
  /// quote's agreed price is charged at bid time, and an unaffordable award
  /// falls through to cheaper quotes.
  Broker(std::vector<SiteAgent*> sites, ClientStrategy strategy,
         Xoshiro256 rng, PricingModel pricing = PricingModel::kBidPrice,
         ClientLedger* ledger = nullptr);

  /// Count of bids dropped because the client's budget was exhausted.
  std::size_t unaffordable_bids() const;

  NegotiationResult negotiate(const Bid& bid);

  const std::vector<NegotiationResult>& history() const { return history_; }

  /// Count of bids no site accepted.
  std::size_t rejected_everywhere() const;

 private:
  std::vector<SiteAgent*> sites_;
  ClientStrategy strategy_;
  PricingModel pricing_;
  ClientLedger* ledger_;
  Xoshiro256 rng_;
  std::vector<NegotiationResult> history_;
};

}  // namespace mbts
