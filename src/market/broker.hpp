// Client-side selection among competing server quotes (paper §2, Fig. 1).
//
// The negotiation is two-phase and sealed-bid: the broker fans the client's
// bid out to every site, collects quotes, picks a winner by the client's
// strategy, and awards the contract. Since the bid is a full value function,
// one exchange suffices.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "market/client.hpp"
#include "market/contract.hpp"
#include "market/site_agent.hpp"
#include "sim/fault.hpp"
#include "util/rng.hpp"

namespace mbts {

class TraceRecorder;

/// How the broker reacts when a negotiation round finds no taker *because
/// sites were unavailable* (down or timed out). Rounds where every site
/// answered and declined are final — retrying a genuine admission rejection
/// would change fault-free runs.
struct RetryPolicy {
  /// Total negotiation rounds per bid (first attempt included).
  std::size_t max_attempts = 4;
  /// Backoff before round k+1 is base_delay * 2^k, capped at max_delay.
  double base_delay = 10.0;
  double max_delay = 160.0;
  /// Re-bid the task of a breached contract to the surviving sites (after
  /// one base_delay of detection latency).
  bool rebid_on_breach = true;
};

/// How a client ranks the accepted quotes.
enum class ClientStrategy {
  /// Highest expected price — since the price equals the client's own value
  /// function at the expected completion, this is also the client-optimal
  /// choice under truthful bidding.
  kMaxExpectedValue,
  /// Earliest expected completion (latency-sensitive clients).
  kEarliestCompletion,
  /// Uniform random among accepting sites (load-spreading floor).
  kRandom,
};

std::string to_string(ClientStrategy strategy);

/// How the contract price is derived from the winning quote (§2).
enum class PricingModel {
  /// Price equals the winner's own quoted expected value ("client bid value
  /// and price are equivalent").
  kBidPrice,
  /// Vickrey-style: the winner's price is set by the runner-up accepted
  /// quote, giving sites an incentive to quote truthfully (as in Spawn).
  /// With a single accepting site the winner's own quote binds.
  kSecondPrice,
};

std::string to_string(PricingModel model);

/// Result of one negotiation for a bid (the final round when retries ran).
struct NegotiationResult {
  Bid bid;
  std::vector<Quote> quotes;          // one per site polled
  std::optional<SiteId> awarded_site; // empty: every site rejected
  /// True when a site would have taken the task but the client's budget
  /// could not cover the agreed price (§2's per-interval budgets).
  bool unaffordable = false;
  /// This negotiation re-bid a breached contract's task; excluded from the
  /// per-bid accounting (the original bid already counted once).
  bool rebid = false;
  /// Rounds this bid took (1 when the first round settled it).
  std::size_t attempts = 1;
};

/// Stateless selection: returns the index into `quotes` of the winner, or
/// nullopt if no quote was accepted.
std::optional<std::size_t> select_quote(const std::vector<Quote>& quotes,
                                        ClientStrategy strategy,
                                        Xoshiro256& rng);

/// Runs one full negotiation for `bid` across `sites` (poll, select, award).
/// On award failure (site state changed) falls through to the next-best
/// quote. Appends the outcome to `results` history.
class Broker {
 public:
  /// `ledger` (optional, not owned) enforces client budgets: the winning
  /// quote's agreed price is charged at bid time, and an unaffordable award
  /// falls through to cheaper quotes.
  Broker(std::vector<SiteAgent*> sites, ClientStrategy strategy,
         Xoshiro256 rng, PricingModel pricing = PricingModel::kBidPrice,
         ClientLedger* ledger = nullptr);

  /// Enables the failure-aware path: retries with capped exponential
  /// backoff are scheduled into `engine` whenever a round fails only for
  /// availability reasons. Without this call, submit() degenerates to one
  /// negotiate() round.
  void enable_retries(SimEngine& engine, const RetryPolicy& retry);

  /// Routes per-poll quote-loss draws through `injector` (may be null).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Optional observability: negotiation outcomes (bid, award, no-award,
  /// timeouts, retries, rebids) are recorded into `trace`. Recording only
  /// reads negotiation state, so a traced run is bit-identical to an
  /// untraced one.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Batch quote executor, the sharded market's hook. Fills `quotes[i] =
  /// sites[i]->quote(bid)` for every i in `polled` (both vectors indexed by
  /// broker site order). The broker has already decided availability and
  /// quote-timeout losses — sites absent from `polled` keep their
  /// synthesized quotes — so the poller's only job is evaluating the
  /// listed sites, in any order or in parallel: quote() is observationally
  /// pure and per-site, which is what makes the fan-out parallelizable at
  /// all. Null restores the default serial loop.
  using QuotePoller = std::function<void(
      const Bid& bid, const std::vector<std::size_t>& polled,
      std::vector<Quote>& quotes)>;
  void set_quote_poller(QuotePoller poller) { poller_ = std::move(poller); }

  /// Site list (broker order); the sharded market uses it to partition the
  /// quote fan-out by shard.
  const std::vector<SiteAgent*>& sites() const { return sites_; }

  /// Count of bids dropped because the client's budget was exhausted.
  std::size_t unaffordable_bids() const;

  /// One self-contained negotiation round, recorded in history. The
  /// fault-free entry point (and each retry round's engine).
  NegotiationResult negotiate(const Bid& bid);

  /// Failure-aware entry point: negotiates now and, when the round failed
  /// only because sites were unavailable, schedules retry rounds under the
  /// RetryPolicy. Exactly one history entry is recorded per submit, for the
  /// final round.
  void submit(const Bid& bid);

  /// Like submit but flagged as the re-bid of a breached contract, so the
  /// original-bid accounting is not double-counted.
  void resubmit(const Bid& bid);

  const std::vector<NegotiationResult>& history() const { return history_; }

  /// Count of bids no site accepted (rebids excluded).
  std::size_t rejected_everywhere() const;

  /// Retry rounds scheduled because every failure was availability-related.
  std::size_t retries() const { return retries_; }
  /// Breached-contract re-bids attempted / successfully re-awarded.
  std::size_t rebids() const { return rebids_; }
  std::size_t re_awards() const { return re_awards_; }

 private:
  /// One backoff retry in flight: the bid being renegotiated plus the round
  /// it resumes at. Slots live in a slab deque (stable addresses) and are
  /// recycled through a free list once their retry round has fired.
  struct RetrySlot {
    Bid bid;
    std::uint32_t round = 0;
    bool rebid = false;
  };

  /// Typed-event handler (EventKind::kBrokerRetry): payload.target is the
  /// broker, payload.a the retry_slab_ slot.
  static void handle_retry(SimEngine& engine, const EventPayload& payload);

  /// One poll-select-award round; no history side effects.
  NegotiationResult negotiate_round(const Bid& bid);
  void attempt(const Bid& bid, std::size_t round, bool is_rebid);
  /// Trace timestamp: engine time once retries are armed, else the bid's
  /// arrival (standalone negotiate() calls outside any engine).
  double trace_now(const Bid& bid) const;

  std::vector<SiteAgent*> sites_;
  ClientStrategy strategy_;
  PricingModel pricing_;
  ClientLedger* ledger_;
  SimEngine* engine_ = nullptr;
  RetryPolicy retry_;
  FaultInjector* injector_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  QuotePoller poller_;
  Xoshiro256 rng_;
  std::vector<std::size_t> poll_scratch_;
  /// True while a negotiation round is running; guards the round's member
  /// scratch against re-entrant or concurrent submission (see
  /// negotiate_round).
  bool negotiating_ = false;
  std::deque<RetrySlot> retry_slab_;
  std::vector<std::uint32_t> free_retries_;
  std::vector<NegotiationResult> history_;
  std::size_t retries_ = 0;
  std::size_t rebids_ = 0;
  std::size_t re_awards_ = 0;
};

}  // namespace mbts
