#include "market/market.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace mbts {

Market::Market(MarketConfig config)
    : config_(std::move(config)),
      engine_(config_.queue_backend.value_or(SimEngine::default_backend())) {
  MBTS_CHECK_MSG(!config_.sites.empty(), "market needs at least one site");
  const QueueBackend backend =
      config_.queue_backend.value_or(SimEngine::default_backend());
  if (config_.shards >= 2) {
    // One member engine per site, partitioned round-robin over the shard
    // workers; the broker's engine_ stays the global synchronization point.
    sharded_ = std::make_unique<ShardedEngine>(config_.shards,
                                               config_.sites.size(), backend);
    shard_polls_.resize(sharded_->shards());
  }
  std::vector<SiteAgent*> raw;
  for (std::size_t i = 0; i < config_.sites.size(); ++i) {
    SimEngine& site_engine =
        sharded_ ? sharded_->member_engine(i) : engine_;
    sites_.push_back(
        std::make_unique<SiteAgent>(site_engine, config_.sites[i]));
    raw.push_back(sites_.back().get());
  }
  for (const auto& [client, budget] : config_.client_budgets)
    ledger_.configure(client, budget);
  broker_ = std::make_unique<Broker>(
      std::move(raw), config_.strategy,
      SeedSequence(config_.rng_seed).stream(0xB20CE2), config_.pricing,
      &ledger_);
  // Retries are armed unconditionally: without unavailable quotes the retry
  // branch is unreachable, so fault-free runs are unaffected.
  broker_->enable_retries(engine_, config_.retry);
  engine_.register_handler(EventKind::kMarketBid, &Market::handle_bid);
  engine_.register_handler(EventKind::kMarketRebid, &Market::handle_rebid);
  if (sharded_ != nullptr) {
    // Negotiation epochs: the poller first advances every shard strictly
    // before this bid's (t, kArrival) boundary, then fans the surviving
    // quote evaluations out to the shard workers (disjoint output slots).
    broker_->set_quote_poller([this](const Bid& bid,
                                     const std::vector<std::size_t>& polled,
                                     std::vector<Quote>& quotes) {
      if (inline_epoch_) {
        // Batched negotiation run: the coordinator has owned every member
        // engine since the last ack barrier, so it performs the epoch
        // itself — advance each member strictly before this event's
        // boundary, then evaluate the surviving quotes — serially, in the
        // same per-member order the parallel window runs. No barrier.
        const double t = engine_.now();
        const int priority = static_cast<int>(EventPriority::kArrival);
        for (std::size_t i = 0; i < sites_.size(); ++i)
          sharded_->member_engine(i).run_until_before(t, priority);
        for (const std::size_t i : polled) quotes[i] = sites_[i]->quote(bid);
        return;
      }
      for (auto& list : shard_polls_) list.clear();
      for (const std::size_t i : polled)
        shard_polls_[sharded_->shard_of(i)].push_back(i);
      poll_bid_ = &bid;
      poll_quotes_ = &quotes;
      const ShardedEngine::EpochJob job = [this](std::size_t shard) {
        for (const std::size_t i : shard_polls_[shard])
          (*poll_quotes_)[i] = sites_[i]->quote(*poll_bid_);
      };
      sharded_->advance_all(engine_.now(),
                            static_cast<int>(EventPriority::kArrival), &job);
      poll_bid_ = nullptr;
      poll_quotes_ = nullptr;
    });
  }
}

void Market::handle_bid(SimEngine& engine, const EventPayload& payload) {
  (void)engine;
  auto& self = *static_cast<Market*>(payload.target);
  self.broker_->submit(self.injected_bids_[static_cast<std::size_t>(payload.a)]);
}

void Market::handle_rebid(SimEngine& engine, const EventPayload& payload) {
  (void)engine;
  auto& self = *static_cast<Market*>(payload.target);
  const auto slot = static_cast<std::uint32_t>(payload.a);
  // Resubmit from the slab slot, then recycle it. The deque gives slots
  // stable addresses, so the bid stays valid even if resubmit() triggers
  // further rebids that claim fresh slots.
  self.broker_->resubmit(self.rebid_slab_[slot]);
  self.free_rebids_.push_back(slot);
}

bool Market::attach_telemetry(TraceRecorder* trace, MetricsRegistry* metrics) {
  // Telemetry recorders are single-threaded; the sharded quote fan-out
  // would write to them from several shard workers at once. Refusing is an
  // error return, not a crash: a caller sweeping shard counts can probe and
  // fall back to an unsharded telemetry run (DESIGN.md §8).
  if (sharded() && (trace != nullptr || metrics != nullptr)) return false;
  trace_ = trace;
  broker_->set_trace(trace);
  for (const auto& site : sites_) site->attach_telemetry(trace, metrics);
  if (injector_ != nullptr) injector_->set_trace(trace);
  return true;
}

void Market::inject(const Trace& trace, ClientId client) {
  for (const Task& task : trace.tasks) {
    ++bids_;
    last_arrival_ = std::max(last_arrival_, task.arrival);
    EventPayload payload;
    payload.target = this;
    payload.a = injected_bids_.size();
    Bid& bid = injected_bids_.emplace_back();
    bid.client = client;
    bid.task = task;
    engine_.schedule_event(task.arrival, EventPriority::kArrival,
                           EventKind::kMarketBid, payload);
  }
}

void Market::submit_bid(const Bid& bid) {
  MBTS_CHECK_MSG(!sharded(),
                 "submit_bid: live submission requires the single-engine "
                 "market (shards <= 1)");
  MBTS_CHECK_MSG(!config_.faults.enabled(),
                 "submit_bid: live submission does not support the fault "
                 "model (faults are armed in run())");
  ++bids_;
  last_arrival_ = std::max(last_arrival_, bid.task.arrival);
  EventPayload payload;
  payload.target = this;
  payload.a = injected_bids_.size();
  injected_bids_.push_back(bid);
  engine_.schedule_event(bid.task.arrival, EventPriority::kArrival,
                         EventKind::kMarketBid, payload);
}

void Market::on_site_down(std::size_t site_index) {
  SiteAgent& site = *sites_[site_index];
  const std::vector<Breach> breaches = site.fail(config_.faults.crash_mode);
  for (const Breach& breach : breaches) {
    // The client paid the agreed price at award time; a breach voids the
    // contract, so the budget charge is reversed (the breach penalty itself
    // lands on the site's revenue, not the client's budget).
    ledger_.try_charge(breach.client, breach.task.arrival,
                       -breach.agreed_price);
    if (config_.retry.rebid_on_breach) {
      std::uint32_t slot;
      if (!free_rebids_.empty()) {
        slot = free_rebids_.back();
        free_rebids_.pop_back();
      } else {
        slot = static_cast<std::uint32_t>(rebid_slab_.size());
        rebid_slab_.emplace_back();
      }
      Bid& bid = rebid_slab_[slot];
      bid.client = breach.client;
      bid.task = breach.task;
      EventPayload payload;
      payload.target = this;
      payload.a = slot;
      // One base_delay of detection latency before the task goes back to
      // market — the client has to notice the breach first.
      engine_.schedule_event_after(config_.retry.base_delay,
                                   EventPriority::kArrival,
                                   EventKind::kMarketRebid, payload);
    }
  }
}

MarketStats Market::run() {
  if (config_.faults.enabled()) {
    SeedSequence seeds(config_.rng_seed);
    const double horizon =
        config_.faults.horizon > 0.0 ? config_.faults.horizon : last_arrival_;
    FaultPlan plan = FaultPlan::generate(config_.faults, sites_.size(),
                                         horizon, seeds.stream(0xFA017));
    injector_ = std::make_unique<FaultInjector>(
        engine_, std::move(plan), sites_.size(),
        config_.faults.quote_timeout_prob, seeds.stream(0x71E0));
    broker_->set_fault_injector(injector_.get());
    injector_->set_trace(trace_);
    injector_->arm(
        [this](SiteId site, const SiteOutage&) { on_site_down(site); },
        [this](SiteId site) { sites_[site]->recover(); });
  }
  if (sharded()) {
    run_sharded_loop();
  } else {
    engine_.run();
  }
  return collect_stats();
}

MarketStats Market::collect_stats() {
  MarketStats stats;
  stats.bids = bids_;
  stats.rejected_everywhere = broker_->rejected_everywhere();
  stats.unaffordable = broker_->unaffordable_bids();
  stats.rejected_everywhere -= stats.unaffordable;
  // Rebids get their own history entries but re-award already-counted work.
  std::size_t primary_entries = 0;
  for (const NegotiationResult& r : broker_->history())
    if (!r.rebid) ++primary_entries;
  stats.awarded = primary_entries - stats.rejected_everywhere -
                  stats.unaffordable;
  stats.retries = broker_->retries();
  stats.rebids = broker_->rebids();
  stats.re_awards = broker_->re_awards();
  if (injector_ != nullptr) {
    stats.outages = injector_->outages_started();
    stats.quote_timeouts = injector_->quote_timeouts();
  }
  for (const auto& site : sites_) {
    site->settle();
    const double revenue = site->revenue();
    stats.site_revenue.push_back(revenue);
    stats.site_stats.push_back(site->scheduler().stats());
    stats.total_revenue += revenue;
    stats.breached_contracts += site->breaches();
    for (const Contract& contract : site->contracts()) {
      stats.total_agreed += contract.agreed_price;
      if (contract.violated()) ++stats.violated_contracts;
    }
  }
  return stats;
}

namespace {

bool is_negotiation(EventKind kind) {
  return kind == EventKind::kMarketBid || kind == EventKind::kBrokerRetry ||
         kind == EventKind::kMarketRebid;
}

}  // namespace

void Market::run_sharded_loop() {
  sharded_->start();
  const bool batching = config_.epoch_batching;
  while (engine_.peek_next_events(2, peek_) > 0) {
    const PeekedEvent& next = peek_[0];
    if (is_negotiation(next.kind)) {
      // Negotiation events (bid, retry round, re-bid) advance the shards
      // themselves, inside the broker's quote poller — one barrier per
      // bid, with the quote evaluations riding on the advance command.
      if (batching && peek_.size() == 2 && is_negotiation(peek_[1].kind)) {
        // At least two negotiation events with nothing between them: run
        // the whole batch inline. The ack barrier of the previous window
        // handed the coordinator ownership of every member engine, so the
        // poller can advance member clocks and serve quotes serially with
        // no further synchronization. Re-peeking after each event keeps
        // retries and re-bids scheduled mid-run in exact reference order;
        // the run ends at the first non-negotiation event (fault, drain),
        // which re-synchronizes the workers.
        inline_epoch_ = true;
        double t = 0.0;
        int priority = 0;
        EventKind kind = EventKind::kClosure;
        do {
          ++batched_epochs_;
          engine_.step();
        } while (engine_.peek_next_event(&t, &priority, &kind) &&
                 is_negotiation(kind));
        inline_epoch_ = false;
      } else {
        // Isolated negotiation: keep the parallel quote fan-out.
        engine_.step();
      }
      continue;
    }
    if (batching && injector_ != nullptr &&
        (next.kind == EventKind::kFaultDown ||
         next.kind == EventKind::kFaultUp)) {
      // A fault transition touches exactly one site (crash/recover, breach
      // settlement, re-bid scheduling — all coordinator-side); only that
      // site's member needs its conservative window, and the coordinator
      // owns it, so no barrier. payload.a indexes the outage plan.
      const SiteOutage& outage =
          injector_->plan().outages[static_cast<std::size_t>(next.payload.a)];
      sharded_->member_engine(outage.site)
          .run_until_before(next.t, next.priority);
      ++local_fault_epochs_;
      engine_.step();
      continue;
    }
    // Everything else (global fault handling with batching off, closure
    // events) gets its conservative window here, before the handler runs
    // against quiescent shard state.
    sharded_->advance_all(next.t, next.priority);
    engine_.step();
  }
  // The broker engine is empty; nothing can schedule further global events,
  // so the members run to completion and the workers retire. Align every
  // member clock with the global end of the run while we are at it:
  // time-weighted statistics (utilization) are denominated in engine time,
  // and the reference's single clock keeps integrating idle time until the
  // last event anywhere in the economy — each member clock must end there
  // too. The drain must land before the alignment boundary is known (it is
  // the members that run last), so this costs one drain barrier plus one
  // single-step batch command.
  sharded_->drain_all();
  double t_end = engine_.now();
  for (std::size_t i = 0; i < sites_.size(); ++i)
    t_end = std::max(t_end, sharded_->member_engine(i).now());
  const ShardedEngine::BatchStep align{t_end,
                                       std::numeric_limits<int>::max()};
  sharded_->batch_all(&align, 1);
  sharded_->stop();
  // The broker clock too: engine().now() is the run's public end time
  // (the oracle replays against it), and in the reference it ends at the
  // last event anywhere — not at the last negotiation.
  engine_.run_until_before(t_end, std::numeric_limits<int>::max());
}

}  // namespace mbts
