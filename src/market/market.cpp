#include "market/market.hpp"

#include "util/check.hpp"

namespace mbts {

Market::Market(MarketConfig config) : config_(std::move(config)) {
  MBTS_CHECK_MSG(!config_.sites.empty(), "market needs at least one site");
  std::vector<SiteAgent*> raw;
  for (const SiteAgentConfig& sc : config_.sites) {
    sites_.push_back(std::make_unique<SiteAgent>(engine_, sc));
    raw.push_back(sites_.back().get());
  }
  for (const auto& [client, budget] : config_.client_budgets)
    ledger_.configure(client, budget);
  broker_ = std::make_unique<Broker>(
      std::move(raw), config_.strategy,
      SeedSequence(config_.rng_seed).stream(0xB20CE2), config_.pricing,
      &ledger_);
}

void Market::inject(const Trace& trace, ClientId client) {
  for (const Task& task : trace.tasks) {
    ++bids_;
    engine_.schedule_at(task.arrival, EventPriority::kArrival,
                        [this, task, client] {
                          Bid bid;
                          bid.client = client;
                          bid.task = task;
                          broker_->negotiate(bid);
                        });
  }
}

MarketStats Market::run() {
  engine_.run();
  MarketStats stats;
  stats.bids = bids_;
  stats.rejected_everywhere = broker_->rejected_everywhere();
  stats.unaffordable = broker_->unaffordable_bids();
  stats.rejected_everywhere -= stats.unaffordable;
  stats.awarded = broker_->history().size() - stats.rejected_everywhere -
                  stats.unaffordable;
  for (const auto& site : sites_) {
    site->settle();
    const double revenue = site->revenue();
    stats.site_revenue.push_back(revenue);
    stats.site_stats.push_back(site->scheduler().stats());
    stats.total_revenue += revenue;
    for (const Contract& contract : site->contracts()) {
      stats.total_agreed += contract.agreed_price;
      if (contract.violated()) ++stats.violated_contracts;
    }
  }
  return stats;
}

}  // namespace mbts
