#include "market/client.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mbts {

void ClientLedger::configure(ClientId client, ClientBudget budget) {
  MBTS_CHECK_MSG(budget.budget_per_interval >= 0.0,
                 "budget must be non-negative");
  MBTS_CHECK_MSG(budget.interval > 0.0, "interval must be positive");
  budgets_[client] = budget;
}

bool ClientLedger::is_constrained(ClientId client) const {
  const auto it = budgets_.find(client);
  return it != budgets_.end() && it->second.budget_per_interval != kInf;
}

std::int64_t ClientLedger::interval_index(const ClientBudget& budget,
                                          SimTime now) const {
  if (budget.interval == kInf) return 0;
  return static_cast<std::int64_t>(std::floor(now / budget.interval));
}

double ClientLedger::remaining(ClientId client, SimTime now) const {
  const auto it = budgets_.find(client);
  if (it == budgets_.end()) return kInf;
  const ClientBudget& budget = it->second;
  if (budget.budget_per_interval == kInf) return kInf;
  const auto key = std::make_pair(client, interval_index(budget, now));
  const auto spent = spent_.find(key);
  const double used = spent == spent_.end() ? 0.0 : spent->second;
  return budget.budget_per_interval - used;
}

bool ClientLedger::try_charge(ClientId client, SimTime now, double amount) {
  const auto it = budgets_.find(client);
  if (it == budgets_.end()) return true;  // unconstrained
  const ClientBudget& budget = it->second;
  const auto key = std::make_pair(client, interval_index(budget, now));
  if (amount > 0.0 && budget.budget_per_interval != kInf) {
    const double used = spent_.count(key) ? spent_[key] : 0.0;
    if (used + amount > budget.budget_per_interval) return false;
  }
  spent_[key] += amount;
  return true;
}

double ClientLedger::total_spent(ClientId client) const {
  double total = 0.0;
  for (const auto& [key, amount] : spent_)
    if (key.first == client) total += amount;
  return total;
}

}  // namespace mbts
