#include "market/broker.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mbts {

std::string to_string(ClientStrategy strategy) {
  switch (strategy) {
    case ClientStrategy::kMaxExpectedValue:
      return "max-expected-value";
    case ClientStrategy::kEarliestCompletion:
      return "earliest-completion";
    case ClientStrategy::kRandom:
      return "random";
  }
  return "?";
}

std::optional<std::size_t> select_quote(const std::vector<Quote>& quotes,
                                        ClientStrategy strategy,
                                        Xoshiro256& rng) {
  std::vector<std::size_t> accepted;
  for (std::size_t i = 0; i < quotes.size(); ++i)
    if (quotes[i].accepted) accepted.push_back(i);
  if (accepted.empty()) return std::nullopt;

  switch (strategy) {
    case ClientStrategy::kMaxExpectedValue:
      return *std::max_element(accepted.begin(), accepted.end(),
                               [&](std::size_t a, std::size_t b) {
                                 return quotes[a].expected_price <
                                        quotes[b].expected_price;
                               });
    case ClientStrategy::kEarliestCompletion:
      return *std::min_element(accepted.begin(), accepted.end(),
                               [&](std::size_t a, std::size_t b) {
                                 return quotes[a].expected_completion <
                                        quotes[b].expected_completion;
                               });
    case ClientStrategy::kRandom:
      return accepted[rng.below(accepted.size())];
  }
  return std::nullopt;
}

std::string to_string(PricingModel model) {
  switch (model) {
    case PricingModel::kBidPrice:
      return "bid-price";
    case PricingModel::kSecondPrice:
      return "second-price";
  }
  return "?";
}

Broker::Broker(std::vector<SiteAgent*> sites, ClientStrategy strategy,
               Xoshiro256 rng, PricingModel pricing, ClientLedger* ledger)
    : sites_(std::move(sites)), strategy_(strategy), pricing_(pricing),
      ledger_(ledger), rng_(rng) {
  MBTS_CHECK_MSG(!sites_.empty(), "broker needs at least one site");
  for (SiteAgent* site : sites_) MBTS_CHECK(site != nullptr);
}

void Broker::enable_retries(SimEngine& engine, const RetryPolicy& retry) {
  engine_ = &engine;
  retry_ = retry;
  engine_->register_handler(EventKind::kBrokerRetry, &Broker::handle_retry);
}

void Broker::handle_retry(SimEngine& engine, const EventPayload& payload) {
  (void)engine;
  auto& self = *static_cast<Broker*>(payload.target);
  const auto slot_index = static_cast<std::uint32_t>(payload.a);
  // The slab deque gives the slot a stable address, so the bid reference
  // stays valid even when attempt() schedules a further retry and claims a
  // fresh slot; this slot is only recyclable after attempt() returns.
  const RetrySlot& slot = self.retry_slab_[slot_index];
  self.attempt(slot.bid, slot.round, slot.rebid);
  self.free_retries_.push_back(slot_index);
}

NegotiationResult Broker::negotiate(const Bid& bid) {
  NegotiationResult result = negotiate_round(bid);
  history_.push_back(result);
  return result;
}

void Broker::submit(const Bid& bid) { attempt(bid, 0, /*is_rebid=*/false); }

void Broker::resubmit(const Bid& bid) {
  ++rebids_;
  if (trace_ != nullptr)
    trace_->record(trace_now(bid), TraceEventKind::kRebid, kNoSite,
                   bid.task.id);
  attempt(bid, 0, /*is_rebid=*/true);
}

double Broker::trace_now(const Bid& bid) const {
  return engine_ != nullptr ? engine_->now() : bid.task.arrival;
}

void Broker::attempt(const Bid& bid, std::size_t round, bool is_rebid) {
  NegotiationResult result = negotiate_round(bid);
  result.attempts = round + 1;
  result.rebid = is_rebid;

  // A round is retryable only when it failed for availability reasons: no
  // award, no budget verdict, and at least one site that never answered. In
  // a fault-free run no quote is ever unavailable, so this branch is dead
  // and submit() is bit-identical to negotiate().
  bool any_unavailable = false;
  for (const Quote& quote : result.quotes)
    if (quote.unavailable) any_unavailable = true;
  if (!result.awarded_site && !result.unaffordable && any_unavailable &&
      engine_ != nullptr && round + 1 < retry_.max_attempts) {
    ++retries_;
    const double delay = std::min(
        retry_.max_delay,
        std::ldexp(retry_.base_delay, static_cast<int>(round)));
    if (trace_ != nullptr)
      trace_->record(trace_now(bid), TraceEventKind::kRetry, kNoSite,
                     bid.task.id, static_cast<double>(round + 2), delay);
    std::uint32_t slot_index;
    if (!free_retries_.empty()) {
      slot_index = free_retries_.back();
      free_retries_.pop_back();
    } else {
      slot_index = static_cast<std::uint32_t>(retry_slab_.size());
      retry_slab_.emplace_back();
    }
    RetrySlot& slot = retry_slab_[slot_index];
    slot.bid = bid;
    slot.round = static_cast<std::uint32_t>(round + 1);
    slot.rebid = is_rebid;
    EventPayload payload;
    payload.target = this;
    payload.a = slot_index;
    engine_->schedule_event_after(delay, EventPriority::kArrival,
                                  EventKind::kBrokerRetry, payload);
    return;  // history records the final round only
  }

  if (is_rebid && result.awarded_site) ++re_awards_;
  history_.push_back(result);
}

NegotiationResult Broker::negotiate_round(const Bid& bid) {
  // Negotiations are strictly serialized: the round works through member
  // scratch (poll_scratch_, the rng stream, the ledger) that a nested or
  // concurrent round would corrupt. The serve layer honors this by feeding
  // live bids through the engine thread one event at a time; this guard
  // turns a future violation into a loud failure instead of silent drift.
  MBTS_CHECK_MSG(!negotiating_, "re-entrant Broker negotiation");
  negotiating_ = true;
  struct Reset {
    bool* flag;
    ~Reset() { *flag = false; }
  } reset{&negotiating_};
  NegotiationResult result;
  result.bid = bid;
  if (trace_ != nullptr)
    trace_->record(trace_now(bid), TraceEventKind::kBid, kNoSite, bid.task.id,
                   static_cast<double>(sites_.size()));
  // Phase 1 (serial): decide per-site availability losses. Quote-timeout
  // draws consume the injector's rng stream in site order whether or not
  // the actual quote evaluations are later batched, so a parallel poller
  // replays exactly the reference draw sequence.
  result.quotes.resize(sites_.size());
  poll_scratch_.clear();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    SiteAgent* site = sites_[i];
    // A lost response is synthesized as an unavailable quote; a down site
    // already answers unavailable itself (and is not additionally lost, so
    // the timeout stream advances only for sites that were up to be polled).
    if (injector_ != nullptr && !site->down() &&
        injector_->quote_times_out(site->id())) {
      Quote lost;
      lost.site = site->id();
      lost.unavailable = true;
      result.quotes[i] = lost;
      if (trace_ != nullptr)
        trace_->record(trace_now(bid), TraceEventKind::kQuoteTimeout,
                       site->id(), bid.task.id);
      continue;
    }
    poll_scratch_.push_back(i);
  }
  // Phase 2: evaluate the surviving polls — through the installed batch
  // poller (sharded runs advance their shards to this bid's boundary here,
  // then quote in parallel), or the default serial loop.
  if (poller_) {
    poller_(bid, poll_scratch_, result.quotes);
  } else {
    for (const std::size_t i : poll_scratch_)
      result.quotes[i] = sites_[i]->quote(bid);
  }

  // Award best first; on a (rare) state-change refusal, fall back to the
  // next-best accepting quote.
  std::vector<Quote> remaining = result.quotes;
  while (true) {
    const auto pick = select_quote(remaining, strategy_, rng_);
    if (!pick) break;
    const Quote& quote = remaining[*pick];
    SiteAgent* site = nullptr;
    for (SiteAgent* s : sites_)
      if (s->id() == quote.site) site = s;
    MBTS_CHECK(site != nullptr);
    std::optional<double> price;
    if (pricing_ == PricingModel::kSecondPrice) {
      // Runner-up accepted price among the *other* sites still in play.
      double second = -kInf;
      bool found = false;
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (i == *pick || !remaining[i].accepted) continue;
        second = std::max(second, remaining[i].expected_price);
        found = true;
      }
      if (found) price = second;
    }
    // Budget check: charge the agreed price before committing the award.
    const double agreed = price.value_or(quote.expected_price);
    if (ledger_ != nullptr &&
        !ledger_->try_charge(bid.client, bid.task.arrival, agreed)) {
      // Too expensive this interval — try a cheaper accepting quote.
      result.unaffordable = true;
      remaining[*pick].accepted = false;
      continue;
    }
    if (site->award(bid, quote, price)) {
      result.awarded_site = quote.site;
      result.unaffordable = false;
      if (trace_ != nullptr)
        trace_->record(trace_now(bid), TraceEventKind::kAward, quote.site,
                       bid.task.id, agreed, quote.expected_completion);
      break;
    }
    // Award refused (site state changed): undo the charge, try next best.
    if (ledger_ != nullptr)
      ledger_->try_charge(bid.client, bid.task.arrival, -agreed);
    remaining[*pick].accepted = false;  // do not retry this site
  }

  if (trace_ != nullptr && !result.awarded_site)
    trace_->record(trace_now(bid), TraceEventKind::kNoAward, kNoSite,
                   bid.task.id, result.unaffordable ? 1.0 : 0.0);
  return result;
}

std::size_t Broker::unaffordable_bids() const {
  std::size_t count = 0;
  for (const NegotiationResult& r : history_)
    if (r.unaffordable && !r.awarded_site && !r.rebid) ++count;
  return count;
}

std::size_t Broker::rejected_everywhere() const {
  std::size_t count = 0;
  for (const NegotiationResult& r : history_)
    if (!r.awarded_site && !r.rebid) ++count;
  return count;
}

}  // namespace mbts
