// Client budget accounting (paper §2).
//
// The paper assumes "each user or group is assigned a budget to spend on
// computing service over each time interval" without modelling the currency
// flow. The ledger implements exactly that: each client has a budget that
// replenishes every interval; a contract's agreed price is charged against
// the interval in which the bid is placed, and a bid the client cannot
// cover is simply not placed. Unspent budget does not roll over
// (use-it-or-lose-it, the common scheme in the cited economic managers).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/types.hpp"

namespace mbts {

struct ClientBudget {
  /// Currency available per interval; kInf disables the constraint.
  double budget_per_interval = kInf;
  /// Interval length in simulated time; kInf makes one infinite interval.
  double interval = kInf;
};

class ClientLedger {
 public:
  /// Clients without explicit configuration are unconstrained.
  void configure(ClientId client, ClientBudget budget);

  bool is_constrained(ClientId client) const;

  /// Remaining budget in the interval containing `now`.
  double remaining(ClientId client, SimTime now) const;

  /// Attempts to charge `amount` against the interval containing `now`;
  /// returns false (and charges nothing) if the remainder is insufficient.
  /// Negative amounts (a site paying a penalty up front) always succeed and
  /// credit the interval.
  bool try_charge(ClientId client, SimTime now, double amount);

  /// Total charged to a client across all intervals.
  double total_spent(ClientId client) const;

 private:
  std::int64_t interval_index(const ClientBudget& budget, SimTime now) const;

  std::map<ClientId, ClientBudget> budgets_;
  std::map<std::pair<ClientId, std::int64_t>, double> spent_;
};

}  // namespace mbts
