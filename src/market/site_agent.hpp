// A task-service site participating in the market (paper §6).
//
// Wraps a SiteScheduler with the two-phase negotiation protocol: quote a
// bid (evaluate admission without commitment), then award it (commit the
// task and form a contract). Settlement evaluates the value function at the
// actual completion once the run drains.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "market/contract.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"

namespace mbts {

class MetricsRegistry;
class TraceRecorder;

/// A contract the site could not honor because it crashed while the task
/// was in flight. Carries the full task so the market layer can re-bid it
/// to surviving sites.
struct Breach {
  Task task;
  ClientId client = 0;
  SiteId site = 0;
  double agreed_price = 0.0;
  /// The (negative or zero) price the breach settled at.
  double settled_price = 0.0;
};

struct SiteAgentConfig {
  SiteId id = 0;
  std::string name = "site";
  SchedulerConfig scheduler;
  PolicySpec policy = PolicySpec::first_reward(0.2);
  /// Negative threshold disables admission control (AcceptAll).
  bool use_slack_admission = true;
  SlackAdmissionConfig admission;
};

class SiteAgent {
 public:
  SiteAgent(SimEngine& engine, SiteAgentConfig config);

  SiteId id() const { return config_.id; }
  const std::string& name() const { return config_.name; }
  const SiteAgentConfig& config() const { return config_; }

  /// Optional observability: forwards `trace`/`metrics` to the wrapped
  /// scheduler under this site's id, and records contract breaches. Either
  /// pointer may be null; attaching never changes scheduling behaviour.
  void attach_telemetry(TraceRecorder* trace, MetricsRegistry* metrics);

  /// Phase 1: evaluate a bid against the current candidate schedule. While
  /// the site is down the quote comes back `unavailable` (and the scheduler
  /// is never consulted).
  Quote quote(const Bid& bid);

  /// Phase 2: the client chose this site — commit the task and form the
  /// contract. Returns false if the site's state changed such that the bid
  /// no longer clears admission (the contract is then not formed).
  /// `agreed_price` overrides the contract price (e.g. a broker applying
  /// second-price rules); by default the quote's own expected price binds.
  bool award(const Bid& bid, const Quote& quoted,
             std::optional<double> agreed_price = std::nullopt);

  // --- Crash semantics (fault injection) ---

  /// The site crashes: in-flight tasks are killed or checkpointed per
  /// `mode`, and (in kill mode) their contracts settle immediately as
  /// breached at the task's penalty bound. Returns the breached contracts
  /// so the market can refund budgets and re-bid the work.
  std::vector<Breach> fail(CrashMode mode);

  /// Recovery: the site resumes quoting and dispatching survivors.
  void recover();

  bool down() const { return scheduler_->down(); }

  /// Contracts breached by crashes so far.
  std::size_t breaches() const { return breaches_; }

  const SiteScheduler& scheduler() const { return *scheduler_; }
  /// Deque, not vector: contracts accumulate for the whole run and a deque
  /// grows block-by-block without relocating (or copying) the arena — award
  /// paths touch only the tail block, and references handed out (e.g. to
  /// settlement loops) stay stable.
  const std::deque<Contract>& contracts() const { return contracts_; }

  /// Fills settlement fields from the scheduler's records; call after the
  /// engine drains (or any time — unfinished contracts stay unsettled).
  void settle();

  /// Total settled revenue (sum of settled prices; penalties negative).
  double revenue() const;

 private:
  SimEngine& engine_;
  SiteAgentConfig config_;
  std::unique_ptr<SiteScheduler> scheduler_;
  std::deque<Contract> contracts_;
  TraceRecorder* trace_ = nullptr;
  std::size_t breaches_ = 0;
};

}  // namespace mbts
