// Bids, quotes, and contracts (paper §2, §6, Figure 1).
//
// A client (or broker acting for it) submits a bid — the task's value
// function and service demand — to one or more task-service sites. Each
// site that accepts responds with a server bid: the expected completion time
// and expected price in its current candidate schedule. A contract binds
// the chosen site to that quote; if the site later delays the task, the
// value function determines the reduced price or penalty at settlement.
#pragma once

#include <string>

#include "core/task.hpp"

namespace mbts {

/// The client bid: (runtime_i, value_i, decay_i, bound_i) plus identity.
struct Bid {
  ClientId client = 0;
  Task task;
};

/// A site's response to a bid.
struct Quote {
  SiteId site = 0;
  bool accepted = false;
  /// The site never answered: it is down, or its response timed out. An
  /// unavailable quote is never `accepted`, but it is the signal that makes
  /// a no-award round retryable — a genuine admission rejection is final.
  bool unavailable = false;
  SimTime expected_completion = 0.0;
  /// Site policy: price equals the value function evaluated at the expected
  /// completion (§2 — "client bid value and price are equivalent").
  double expected_price = 0.0;
  /// The admission slack behind the decision (diagnostic).
  double slack = 0.0;
};

/// A formed agreement, settled when the task actually completes.
struct Contract {
  TaskId task = kInvalidTask;
  ClientId client = 0;
  SiteId site = 0;
  SimTime agreed_completion = 0.0;
  double agreed_price = 0.0;

  bool settled = false;
  /// The site crashed and could not deliver: settled at the breach time
  /// with settled_price = Task::breach_yield (the paper's penalty bound
  /// when the value function has one). actual_completion then records the
  /// breach instant, not a completion.
  bool breached = false;
  SimTime actual_completion = 0.0;
  /// Value function evaluated at the actual completion: the reduced price,
  /// or a penalty when negative.
  double settled_price = 0.0;

  /// Price shortfall relative to the agreement (0 when on time).
  double shortfall() const {
    return settled ? agreed_price - settled_price : 0.0;
  }
  /// True when settlement ran past the agreed completion.
  bool violated() const { return settled && actual_completion > agreed_completion; }

  std::string to_string() const;
};

}  // namespace mbts
