// The multi-site task-service economy (paper §2, Figure 1).
//
// Owns the simulation engine, a set of heterogeneous task-service sites, and
// a broker; injects a bid stream (a trace), runs the economy to completion,
// and settles every contract. This is the end-to-end system the paper's
// framework describes; the single-site experiments of Figs. 3–7 are the
// degenerate one-site case driven directly through SiteScheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "market/broker.hpp"
#include "market/site_agent.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/sharded_engine.hpp"
#include "workload/trace.hpp"

namespace mbts {

class MetricsRegistry;
class TraceRecorder;

struct MarketConfig {
  std::vector<SiteAgentConfig> sites;
  ClientStrategy strategy = ClientStrategy::kMaxExpectedValue;
  PricingModel pricing = PricingModel::kBidPrice;
  /// Per-client budgets (§2); clients absent from the map are
  /// unconstrained.
  std::map<ClientId, ClientBudget> client_budgets;
  std::uint64_t rng_seed = 42;
  /// Failure model. Defaults to no faults, in which case no injector is
  /// built and the run is bit-identical to a build without one.
  FaultConfig faults;
  /// How the broker reacts to unavailability (only reachable with faults).
  RetryPolicy retry;
  /// Parallel execution. 0/1 runs the whole economy on one engine (the
  /// reference). >= 2 gives every site its own SimEngine, partitions the
  /// sites over that many worker threads, and synchronizes them against
  /// the broker's engine at conservative negotiation epochs — bit-identical
  /// to the reference for any value (see DESIGN.md §8).
  std::size_t shards = 1;
  /// Sharded mode only: batch consecutive negotiation epochs between shard
  /// barriers. After an epoch's ack barrier the coordinator owns every
  /// member engine, so it can execute a whole run of negotiation events
  /// (bids, retries, re-bids) inline — advancing member clocks and serving
  /// quotes serially, in exact reference order — and only synchronize the
  /// workers again at the next non-negotiation event or drain. Single-site
  /// fault transitions are likewise routed through just that site's member
  /// engine. Bit-identical to batching off and to the single-engine
  /// reference (DESIGN.md §8); off restores one barrier per global event.
  bool epoch_batching = true;
  /// Event-queue backend for every engine this market builds (broker and
  /// shards alike). Explicit per-market choice beats set_default_backend,
  /// which beats the MBTS_QUEUE_BACKEND environment variable — the
  /// precedence matters for sharded construction, where several engines
  /// must agree. nullopt inherits the process default.
  std::optional<QueueBackend> queue_backend;
};

/// Economy-level results after a run.
struct MarketStats {
  std::size_t bids = 0;
  std::size_t awarded = 0;
  std::size_t rejected_everywhere = 0;
  std::size_t unaffordable = 0;
  double total_revenue = 0.0;        // settled, across sites
  double total_agreed = 0.0;         // sum of agreed prices
  std::size_t violated_contracts = 0;
  // Failure-model outcomes (all zero in fault-free runs).
  std::size_t outages = 0;            // site outages that started
  std::size_t breached_contracts = 0; // contracts settled as breached
  std::size_t quote_timeouts = 0;     // lost quote responses
  std::size_t retries = 0;            // extra negotiation rounds scheduled
  std::size_t rebids = 0;             // breached tasks re-bid
  std::size_t re_awards = 0;          // re-bids that found a new taker
  std::vector<double> site_revenue;  // aligned with sites()
  std::vector<RunStats> site_stats;
};

class Market {
 public:
  explicit Market(MarketConfig config);

  SimEngine& engine() { return engine_; }
  /// The engine site i's events run on: its member engine when sharded,
  /// otherwise the global engine.
  SimEngine& site_engine(std::size_t i) {
    return sharded_ != nullptr ? sharded_->member_engine(i) : engine_;
  }
  const std::vector<std::unique_ptr<SiteAgent>>& sites() const {
    return sites_;
  }
  Broker& broker() { return *broker_; }
  const ClientLedger& ledger() const { return ledger_; }

  /// Optional observability: wires `trace`/`metrics` through the broker,
  /// every site agent, and (once built in run()) the fault injector. Either
  /// pointer may be null. Call before run(); attaching never changes market
  /// outcomes, only records them.
  ///
  /// Returns false — attaching nothing — when this market is sharded and
  /// either pointer is non-null: the recorders are single-threaded and the
  /// parallel quote fan-out would write to them from several shard workers
  /// at once. Callers that need telemetry run with shards <= 1; callers
  /// that need shards check the return value instead of crashing.
  [[nodiscard]] bool attach_telemetry(TraceRecorder* trace,
                                      MetricsRegistry* metrics);

  /// Schedules every task in the trace as a bid negotiation at its arrival.
  void inject(const Trace& trace, ClientId client = 0);

  /// Live-submission path for service mode: schedules one bid negotiation at
  /// `bid.task.arrival`, exactly as inject() would. The caller owns the
  /// engine pump (run_until_before/step) and finishes with collect_stats()
  /// instead of run(). Restricted to the single-engine, fault-free
  /// configuration — the serve layer pumps events incrementally, which the
  /// sharded loop and the fault-arming preamble in run() do not support.
  void submit_bid(const Bid& bid);

  /// Runs the engine until all work drains, then settles all contracts.
  MarketStats run();

  /// Settles every site and assembles MarketStats from the current engine
  /// state. run() calls this after draining; a live server calls it directly
  /// once it has pumped the engine dry. Settling is idempotent per contract,
  /// but the totals only mean "final" when no events remain.
  MarketStats collect_stats();

  /// The armed injector, or null when `config.faults` is disabled.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// True when this market runs site engines on shard workers (config
  /// shards >= 2 with more than zero sites).
  bool sharded() const { return sharded_ != nullptr; }

  /// Sharded-run synchronization counters (all zero when not sharded).
  /// Barriers are ack rounds against the shard workers; batched epochs are
  /// negotiation events the coordinator executed inline between barriers;
  /// local faults are single-site outage transitions that skipped the
  /// barrier. The bench asserts batching collapses barriers while the
  /// outputs stay bit-identical.
  std::uint64_t barriers() const {
    return sharded_ != nullptr ? sharded_->barriers() : 0;
  }
  std::uint64_t batched_epochs() const { return batched_epochs_; }
  std::uint64_t local_fault_epochs() const { return local_fault_epochs_; }

 private:
  // Typed-event handlers. payload.target is the market; payload.a indexes
  // injected_bids_ (kMarketBid) or rebid_slab_ (kMarketRebid).
  static void handle_bid(SimEngine& engine, const EventPayload& payload);
  static void handle_rebid(SimEngine& engine, const EventPayload& payload);

  /// Down-hook: crash the site, settle breaches, refund and re-bid them.
  void on_site_down(std::size_t site_index);

  /// The sharded replacement for engine_.run(): alternates conservative
  /// shard windows with single broker-engine events (see DESIGN.md §8).
  void run_sharded_loop();

  MarketConfig config_;
  /// Sharded mode only: per-site engines + shard workers; built before
  /// engine_ so sites can be constructed against their member engines.
  std::unique_ptr<ShardedEngine> sharded_;
  SimEngine engine_;
  ClientLedger ledger_;
  std::vector<std::unique_ptr<SiteAgent>> sites_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<FaultInjector> injector_;
  TraceRecorder* trace_ = nullptr;
  /// Arena for inject()ed bids: arrival events carry an index into this
  /// deque (stable slots) instead of a heap-allocated closure per bid.
  std::deque<Bid> injected_bids_;
  /// Slab for in-flight breach re-bids, recycled through the free list once
  /// the re-bid round has fired.
  std::deque<Bid> rebid_slab_;
  std::vector<std::uint32_t> free_rebids_;
  std::size_t bids_ = 0;
  SimTime last_arrival_ = 0.0;

  // Sharded quote fan-out scratch (valid only inside one negotiation
  // epoch): the site indices each shard evaluates, and the bid/output the
  // epoch job reads and writes. Written by the coordinator before the
  // epoch barrier, read by the workers inside it.
  std::vector<std::vector<std::size_t>> shard_polls_;
  const Bid* poll_bid_ = nullptr;
  std::vector<Quote>* poll_quotes_ = nullptr;
  // True while the coordinator is executing a batched negotiation run: the
  // quote poller then advances member clocks and evaluates quotes inline
  // (it owns all member state) instead of broadcasting an epoch barrier.
  bool inline_epoch_ = false;
  std::uint64_t batched_epochs_ = 0;
  std::uint64_t local_fault_epochs_ = 0;
  // Lookahead scratch for the batching window decision.
  std::vector<PeekedEvent> peek_;
};

}  // namespace mbts
