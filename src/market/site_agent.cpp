#include "market/site_agent.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace mbts {

namespace {
std::unique_ptr<AdmissionPolicy> make_admission(const SiteAgentConfig& cfg) {
  if (cfg.use_slack_admission)
    return std::make_unique<SlackAdmission>(cfg.admission);
  return std::make_unique<AcceptAllAdmission>();
}
}  // namespace

SiteAgent::SiteAgent(SimEngine& engine, SiteAgentConfig config)
    : engine_(engine), config_(std::move(config)) {
  scheduler_ = std::make_unique<SiteScheduler>(
      engine_, config_.scheduler, make_policy(config_.policy),
      make_admission(config_));
}

Quote SiteAgent::quote(const Bid& bid) {
  const AdmissionDecision decision = scheduler_->quote(bid.task);
  Quote q;
  q.site = config_.id;
  q.accepted = decision.accept;
  q.expected_completion = decision.expected_completion;
  q.expected_price = decision.expected_yield;
  q.slack = decision.slack;
  return q;
}

bool SiteAgent::award(const Bid& bid, const Quote& quoted,
                      std::optional<double> agreed_price) {
  MBTS_CHECK_MSG(quoted.site == config_.id, "quote belongs to another site");
  const AdmissionDecision decision = scheduler_->submit(bid.task);
  if (!decision.accept) return false;
  Contract contract;
  contract.task = bid.task.id;
  contract.client = bid.client;
  contract.site = config_.id;
  contract.agreed_completion = decision.expected_completion;
  contract.agreed_price = agreed_price.value_or(decision.expected_yield);
  contracts_.push_back(contract);
  return true;
}

void SiteAgent::settle() {
  // Index completion data from the scheduler's records once, then settle.
  std::unordered_map<TaskId, const TaskRecord*> finished;
  finished.reserve(scheduler_->records().size());
  for (const TaskRecord& record : scheduler_->records()) {
    if (record.outcome == TaskOutcome::kCompleted ||
        record.outcome == TaskOutcome::kDropped)
      finished[record.task.id] = &record;
  }
  for (Contract& contract : contracts_) {
    if (contract.settled) continue;
    const auto it = finished.find(contract.task);
    if (it == finished.end()) continue;
    contract.settled = true;
    contract.actual_completion = it->second->completion;
    // The agreed price is a cap: finishing early never charges extra, and
    // delays reduce the price (or turn it into a penalty) per the value
    // function (§2/§3).
    contract.settled_price =
        std::min(contract.agreed_price, it->second->realized_yield);
  }
}

double SiteAgent::revenue() const {
  double total = 0.0;
  for (const Contract& contract : contracts_)
    if (contract.settled) total += contract.settled_price;
  return total;
}

}  // namespace mbts
