#include "market/site_agent.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace mbts {

namespace {
std::unique_ptr<AdmissionPolicy> make_admission(const SiteAgentConfig& cfg) {
  if (cfg.use_slack_admission)
    return std::make_unique<SlackAdmission>(cfg.admission);
  return std::make_unique<AcceptAllAdmission>();
}
}  // namespace

SiteAgent::SiteAgent(SimEngine& engine, SiteAgentConfig config)
    : engine_(engine), config_(std::move(config)) {
  scheduler_ = std::make_unique<SiteScheduler>(
      engine_, config_.scheduler, make_policy(config_.policy),
      make_admission(config_));
}

void SiteAgent::attach_telemetry(TraceRecorder* trace,
                                 MetricsRegistry* metrics) {
  trace_ = trace;
  scheduler_->set_telemetry(trace, metrics, config_.id);
}

Quote SiteAgent::quote(const Bid& bid) {
  Quote q;
  q.site = config_.id;
  if (scheduler_->down()) {
    q.unavailable = true;
    return q;
  }
  const AdmissionDecision decision = scheduler_->quote(bid.task);
  q.accepted = decision.accept;
  q.expected_completion = decision.expected_completion;
  q.expected_price = decision.expected_yield;
  q.slack = decision.slack;
  return q;
}

bool SiteAgent::award(const Bid& bid, const Quote& quoted,
                      std::optional<double> agreed_price) {
  MBTS_CHECK_MSG(quoted.site == config_.id, "quote belongs to another site");
  // The site may have crashed between quote and award.
  if (scheduler_->down()) return false;
  const AdmissionDecision decision = scheduler_->submit(bid.task);
  if (!decision.accept) return false;
  Contract contract;
  contract.task = bid.task.id;
  contract.client = bid.client;
  contract.site = config_.id;
  contract.agreed_completion = decision.expected_completion;
  contract.agreed_price = agreed_price.value_or(decision.expected_yield);
  contracts_.push_back(contract);
  return true;
}

std::vector<Breach> SiteAgent::fail(CrashMode mode) {
  const std::vector<Task> killed = scheduler_->crash(mode);
  std::vector<Breach> breaches;
  breaches.reserve(killed.size());
  const SimTime now = engine_.now();
  for (const Task& task : killed) {
    // Settle the (unique, unsettled) contract of each killed task at the
    // task's breach yield — the paper's penalty bound for bounded value
    // functions. A killed task without a contract (direct scheduler use)
    // just doesn't produce a breach.
    for (Contract& contract : contracts_) {
      if (contract.task != task.id || contract.settled) continue;
      contract.settled = true;
      contract.breached = true;
      contract.actual_completion = now;
      contract.settled_price = task.breach_yield(now);
      ++breaches_;
      if (trace_ != nullptr)
        trace_->record(now, TraceEventKind::kBreach, config_.id, task.id,
                       contract.settled_price, contract.agreed_price);
      breaches.push_back({task, contract.client, config_.id,
                          contract.agreed_price, contract.settled_price});
      break;
    }
  }
  return breaches;
}

void SiteAgent::recover() { scheduler_->recover(); }

void SiteAgent::settle() {
  // Index completion data from the scheduler's records once, then settle.
  std::unordered_map<TaskId, const TaskRecord*> finished;
  finished.reserve(scheduler_->records().size());
  for (const TaskRecord& record : scheduler_->records()) {
    if (record.outcome == TaskOutcome::kCompleted ||
        record.outcome == TaskOutcome::kDropped)
      finished[record.task.id] = &record;
  }
  for (Contract& contract : contracts_) {
    if (contract.settled) continue;
    const auto it = finished.find(contract.task);
    if (it == finished.end()) continue;
    contract.settled = true;
    contract.actual_completion = it->second->completion;
    // The agreed price is a cap: finishing early never charges extra, and
    // delays reduce the price (or turn it into a penalty) per the value
    // function (§2/§3).
    contract.settled_price =
        std::min(contract.agreed_price, it->second->realized_yield);
  }
}

double SiteAgent::revenue() const {
  double total = 0.0;
  for (const Contract& contract : contracts_)
    if (contract.settled) total += contract.settled_price;
  return total;
}

}  // namespace mbts
