#include "market/contract.hpp"

#include <sstream>

namespace mbts {

std::string Contract::to_string() const {
  std::ostringstream os;
  os << "contract task#" << task << " client#" << client << " site#" << site
     << " agreed(t=" << agreed_completion << ", price=" << agreed_price
     << ')';
  if (settled)
    os << (breached ? " breached(t=" : " settled(t=") << actual_completion
       << ", price=" << settled_price << ')';
  return os.str();
}

}  // namespace mbts
