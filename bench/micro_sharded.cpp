// Sharded-engine scaling study: one seeded 1024-site market run swept over
// shards x epoch-batching x score-kernels (1 shard = the single-engine
// reference path, no threads).
//
// The trace is negotiation-dominated — every bid polls all up sites, so a
// 4096-job run evaluates ~4.2M quotes across the 1024 member schedulers,
// which is the sustained-load regime the sharded engine exists for (a
// literal million-task trace at this fan-out would be ~10^9 quote
// evaluations per iteration; EXPERIMENTS.md "Sharded batching at scale"
// spells out the scaling arithmetic). Every iteration's MarketStats is
// compared bit-for-bit against the single-engine reference fingerprint
// computed once at startup: wall-clock deltas therefore measure pure
// execution-engine cost, never behavioral drift.
//
// Counters: "barriers" is the number of coordinator broadcast/ack rounds,
// "batched_epochs" the negotiation epochs executed inline between barriers
// (zero with batching off). The barrier reduction is the deterministic
// headline — it holds on any host — while wall-clock speedup additionally
// needs real cores; on a 1-CPU container the sweep records synchronization
// overhead instead (see EXPERIMENTS.md before reading the numbers).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_main.hpp"
#include "experiments/fingerprint.hpp"
#include "market/market.hpp"
#include "util/rng.hpp"
#include "workload/presets.hpp"

namespace {

using namespace mbts;

constexpr std::size_t kSites = 1024;
constexpr std::size_t kJobs = 4096;

MarketConfig scaling_config(std::size_t shards, bool batching, bool kernels) {
  MarketConfig config;
  for (std::size_t i = 0; i < kSites; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = 2 + i % 4;
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.scheduler.score_kernels =
        kernels ? ScoreKernelMode::kExact : ScoreKernelMode::kOff;
    site.policy = PolicySpec::first_reward(0.3);
    site.admission = SlackAdmissionConfig{60.0 * static_cast<double>(i % 5),
                                          false};
    config.sites.push_back(site);
  }
  config.pricing = PricingModel::kSecondPrice;
  config.rng_seed = 42;
  config.shards = shards;
  config.epoch_batching = batching;
  return config;
}

const Trace& scaling_trace() {
  static const Trace trace = [] {
    Xoshiro256 rng = SeedSequence(42).stream(8);
    return generate_trace(presets::admission_mix(3.0, kJobs), rng);
  }();
  return trace;
}

/// Full bit-level identity of a run (economy line + per-site lines at
/// %.17g), matching the representation the determinism tests compare.
std::string identity(const MarketStats& stats) {
  std::string out = fingerprint_line("market", stats);
  for (std::size_t i = 0; i < stats.site_stats.size(); ++i)
    out += fingerprint_line("site" + std::to_string(i), stats.site_stats[i]);
  return out;
}

/// The single-engine reference identity, computed once per process.
const std::string& reference_identity() {
  static const std::string ref = [] {
    Market market(scaling_config(1, true, true));
    market.inject(scaling_trace());
    return identity(market.run());
  }();
  return ref;
}

void BM_ShardedScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool batching = state.range(1) != 0;
  const bool kernels = state.range(2) != 0;
  const Trace& trace = scaling_trace();
  const std::string& reference = reference_identity();
  std::uint64_t barriers = 0;
  std::uint64_t batched_epochs = 0;
  for (auto _ : state) {
    Market market(scaling_config(shards, batching, kernels));
    market.inject(trace);
    const MarketStats stats = market.run();
    benchmark::DoNotOptimize(stats.total_revenue);
    barriers = market.barriers();
    batched_epochs = market.batched_epochs();
    // Every combination must reproduce the single-engine reference run
    // bit-for-bit; a drifting result makes the timing meaningless, so
    // fail loudly.
    if (identity(stats) != reference)
      state.SkipWithError("sharded run diverged from the reference");
  }
  state.counters["barriers"] = static_cast<double>(barriers);
  state.counters["batched_epochs"] = static_cast<double>(batched_epochs);
  state.SetItemsProcessed(static_cast<std::int64_t>(kJobs) *
                          state.iterations());
}
// Real time, not CPU time: the work migrates to shard workers, and the
// coordinator's own CPU time would under-count a sharded run.
BENCHMARK(BM_ShardedScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}, {0, 1}})
    ->ArgNames({"shards", "batching", "kernels"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

MBTS_BENCHMARK_MAIN()
