// Sharded-engine scaling microbenchmark: one seeded market run across a
// shard-count sweep (1 = the single-engine reference path, no threads).
//
// The workload is quote-heavy — many small sites, so each negotiation fans
// out wide and the parallel window has real work — and every shard count
// produces bit-identical MarketStats (asserted here, cheaply, every
// iteration). Wall-clock scaling therefore measures pure execution-engine
// overhead/benefit, not behavioral drift. On a single-CPU host the sweep
// records the synchronization *overhead* of sharding rather than a speedup;
// see EXPERIMENTS.md ("Sharded scaling curve") before reading the numbers.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_main.hpp"
#include "market/market.hpp"
#include "util/rng.hpp"
#include "workload/presets.hpp"

namespace {

using namespace mbts;

constexpr std::size_t kSites = 16;
constexpr std::size_t kJobs = 1200;

MarketConfig scaling_config(std::size_t shards) {
  MarketConfig config;
  for (std::size_t i = 0; i < kSites; ++i) {
    SiteAgentConfig site;
    site.id = static_cast<SiteId>(i);
    site.name = "site" + std::to_string(i);
    site.scheduler.processors = 2 + i % 4;
    site.scheduler.preemption = true;
    site.scheduler.discount_rate = 0.01;
    site.policy = PolicySpec::first_reward(0.3);
    site.admission = SlackAdmissionConfig{60.0 * static_cast<double>(i % 5),
                                          false};
    config.sites.push_back(site);
  }
  config.pricing = PricingModel::kSecondPrice;
  config.rng_seed = 42;
  config.shards = shards;
  return config;
}

void BM_ShardedScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng = SeedSequence(42).stream(8);
  const Trace trace = generate_trace(presets::admission_mix(3.0, kJobs), rng);
  double reference_revenue = 0.0;
  for (auto _ : state) {
    Market market(scaling_config(shards));
    market.inject(trace);
    const MarketStats stats = market.run();
    benchmark::DoNotOptimize(stats.total_revenue);
    // Any shard count must reproduce the same run bit-for-bit; a drifting
    // result makes the timing meaningless, so fail loudly.
    if (reference_revenue == 0.0) reference_revenue = stats.total_revenue;
    if (stats.total_revenue != reference_revenue)
      state.SkipWithError("sharded run diverged from first iteration");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kJobs) *
                          state.iterations());
}
// Real time, not CPU time: the work migrates to shard workers, and the
// coordinator's own CPU time would under-count a sharded run.
BENCHMARK(BM_ShardedScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

MBTS_BENCHMARK_MAIN()
