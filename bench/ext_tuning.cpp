// Extension: grid-search tuning of FirstReward's (alpha, slack threshold)
// per load factor — the operational form of §8's conclusion that the ideal
// parameters depend on the task mix, and of Fig. 7's "the ideal slack
// threshold changes depending on the load factor".
#include <filesystem>
#include <fstream>
#include <iostream>

#include "experiments/tuner.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mbts;

  CliParser cli("ext_tuning",
                "per-load grid search over FirstReward (alpha, threshold)");
  cli.add_flag("jobs", "2000", "tasks per trace");
  cli.add_flag("reps", "3", "replications per grid cell");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("threads", "0", "worker threads (0 = hardware)");
  cli.add_flag("out", "bench_out/ext_tuning.csv",
               "CSV output path (empty to skip)");
  if (!cli.parse(argc, argv)) return 1;

  ExperimentOptions options;
  options.num_jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
  options.replications = static_cast<std::size_t>(cli.get_uint("reps"));
  options.seed = cli.get_uint("seed");
  options.threads = static_cast<std::size_t>(cli.get_uint("threads"));

  const std::vector<double> loads{0.67, 1.0, 1.33, 2.0, 3.0};
  const TuneGrid grid;

  ConsoleTable summary({"load", "best_alpha", "best_threshold",
                        "best_yield_rate", "no_admission_rate",
                        "gain_%"});
  std::vector<std::vector<std::string>> csv_rows;
  for (double load : loads) {
    const TuneResult result = tune_first_reward(options, load, grid);
    const double gain =
        result.no_admission_rate == 0.0
            ? 0.0
            : 100.0 * (result.best.yield_rate - result.no_admission_rate) /
                  std::abs(result.no_admission_rate);
    summary.row({ConsoleTable::num(load, 2),
                 ConsoleTable::num(result.best.alpha, 1),
                 ConsoleTable::num(result.best.threshold, 0),
                 ConsoleTable::num(result.best.yield_rate, 2),
                 ConsoleTable::num(result.no_admission_rate, 2),
                 ConsoleTable::num(gain, 1)});
    for (const TunePoint& p : result.grid)
      csv_rows.push_back({CsvWriter::field(load), CsvWriter::field(p.alpha),
                          CsvWriter::field(p.threshold),
                          CsvWriter::field(p.yield_rate),
                          CsvWriter::field(p.sem)});
  }

  std::cout << "ext_tuning: best FirstReward parameters per load factor\n\n"
            << summary.render();

  const std::string out = cli.get_string("out");
  if (!out.empty()) {
    const std::filesystem::path path(out);
    if (path.has_parent_path())
      std::filesystem::create_directories(path.parent_path());
    std::ofstream file(out);
    CsvWriter writer(file,
                     {"load", "alpha", "threshold", "yield_rate", "sem"});
    for (const auto& row : csv_rows) writer.row(row);
    std::cout << "\nwrote " << out << '\n';
  }
  return 0;
}
