// Extension: runtime misestimation sensitivity. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_estimates",
                              "Extension: runtime misestimation sensitivity",
                              mbts::extension_estimate_error,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
