// Ablation: Eq. 8 literal vs corrected admission cost. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "abl_eq8",
                              "Ablation: Eq. 8 literal vs corrected admission cost",
                              mbts::ablation_eq8,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
