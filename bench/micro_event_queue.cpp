// Microbenchmarks for the discrete-event engine: schedule/run throughput
// and cancellation overhead.
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(7);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    for (double t : times)
      engine.schedule_at(t, mbts::EventPriority::kControl,
                         [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_ScheduleCancelHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(11);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kControl,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleCancelHalf)->Range(1 << 10, 1 << 16);

// Production-scale churn: 90% of scheduled events are cancelled before they
// fire (the completion-event pattern of a heavily preempting site). The
// tombstone ratio repeatedly crosses the lazy-compaction threshold, so this
// measures the sweep itself plus the top-of-heap skimming it bounds.
void BM_CancelHeavyChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(13);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kCompletion,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; ++i)
      if (i % 10 != 0) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_CancelHeavyChurn)->Arg(1000)->Arg(10000);

// Bounded-horizon drains: the probe/market pattern of advancing the clock in
// run_until strides. Half the events are cancelled so tombstones routinely
// sit at the heap top when the horizon check runs — the exact shape of the
// run_until time-travel bug this engine guards against.
void BM_RunUntilStrided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(29);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kControl,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    for (int step = 1; step <= 100; ++step)
      engine.run_until(1e6 * step / 100.0);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RunUntilStrided)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
