// Microbenchmarks for the discrete-event engine: schedule/run throughput
// and cancellation overhead.
//
// The BM_* benchmarks below run on a default-constructed engine (the
// process-default queue backend) and keep their historical names so
// BENCH_dispatch.json baselines stay comparable. The BM_Backend* family
// sweeps both queue backends explicitly across the three churn mixes that
// separate them — schedule-heavy, cancel-heavy, strided run_until — and
// feeds BENCH_event_queue.json (tools/bench_event_queue.sh).
#include <benchmark/benchmark.h>

#include "bench_main.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(7);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    for (double t : times)
      engine.schedule_at(t, mbts::EventPriority::kControl,
                         [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun)->Range(1 << 10, 1 << 16);

void BM_ScheduleCancelHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(11);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kControl,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleCancelHalf)->Range(1 << 10, 1 << 16);

// Production-scale churn: 90% of scheduled events are cancelled before they
// fire (the completion-event pattern of a heavily preempting site). The
// tombstone ratio repeatedly crosses the lazy-compaction threshold, so this
// measures the sweep itself plus the top-of-heap skimming it bounds.
void BM_CancelHeavyChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(13);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kCompletion,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; ++i)
      if (i % 10 != 0) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_CancelHeavyChurn)->Arg(1000)->Arg(10000);

// Bounded-horizon drains: the probe/market pattern of advancing the clock in
// run_until strides. Half the events are cancelled so tombstones routinely
// sit at the heap top when the horizon check runs — the exact shape of the
// run_until time-travel bug this engine guards against.
void BM_RunUntilStrided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(29);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine;
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kControl,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    for (int step = 1; step <= 100; ++step)
      engine.run_until(1e6 * step / 100.0);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RunUntilStrided)->Arg(1000)->Arg(10000);

// --- Explicit backend sweeps (arg 0: events, arg 1: QueueBackend) ----------

mbts::QueueBackend backend_arg(const benchmark::State& state) {
  return static_cast<mbts::QueueBackend>(state.range(1));
}

// Pure schedule/pop throughput, no cancellation: the tombstone heap's best
// case (no skimming) and the indexed heap's overhead floor (heap_pos upkeep
// with nothing to show for it).
void BM_BackendScheduleHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(7);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine{backend_arg(state)};
    std::uint64_t fired = 0;
    for (double t : times)
      engine.schedule_at(t, mbts::EventPriority::kControl,
                         [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BackendScheduleHeavy)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "backend"});

// 90% of events cancelled before firing: tombstone sweeps vs indexed
// in-place removal — the mix the indexed backend exists for.
void BM_BackendCancelHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(13);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine{backend_arg(state)};
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kCompletion,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; ++i)
      if (i % 10 != 0) engine.cancel(ids[i]);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BackendCancelHeavy)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "backend"});

// Bounded-horizon drains with half the events cancelled: tombstones
// routinely surface at the heap top during the horizon check; the indexed
// backend never has any to skim.
void BM_BackendRunUntilStrided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(29);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    mbts::SimEngine engine{backend_arg(state)};
    std::uint64_t fired = 0;
    std::vector<mbts::EventId> ids;
    ids.reserve(n);
    for (double t : times)
      ids.push_back(engine.schedule_at(t, mbts::EventPriority::kControl,
                                       [&fired] { ++fired; }));
    for (std::size_t i = 0; i < n; i += 2) engine.cancel(ids[i]);
    for (int step = 1; step <= 100; ++step)
      engine.run_until(1e6 * step / 100.0);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BackendRunUntilStrided)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "backend"});

// Typed-event hot path: the engine's native POD payload dispatch with no
// std::function in sight — the steady-state shape of scheduler completion
// and dispatch traffic.
void BM_BackendTypedEvents(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(31);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    mbts::SimEngine engine{backend_arg(state)};
    engine.register_handler(
        mbts::EventKind::kProbe,
        [](mbts::SimEngine&, const mbts::EventPayload& payload) {
          ++*static_cast<std::uint64_t*>(payload.target);
        });
    mbts::EventPayload payload;
    payload.target = &fired;
    for (double t : times)
      engine.schedule_event(t, mbts::EventPriority::kControl,
                            mbts::EventKind::kProbe, payload);
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BackendTypedEvents)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->ArgNames({"n", "backend"});

}  // namespace

MBTS_BENCHMARK_MAIN()
