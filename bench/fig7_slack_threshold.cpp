// Reproduces Figure 7: yield-rate improvement over no admission control as
// the slack threshold sweeps -200..700, for load factors
// {0.5, 0.67, 0.89, 1.33, 2} (FirstReward alpha 0.2, discount 1%).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "fig7_slack_threshold",
      "Figure 7: slack threshold vs improvement over no admission control",
      mbts::figure7);
}
