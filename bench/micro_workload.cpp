// Microbenchmarks for the RNG and trace generation substrate.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

void BM_Xoshiro(benchmark::State& state) {
  mbts::Xoshiro256 rng(99);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_GenerateTrace(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  mbts::WorkloadSpec spec = mbts::presets::admission_mix(1.0, jobs);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    const mbts::Trace trace =
        mbts::generate_trace(spec, mbts::SeedSequence(3), rep++);
    benchmark::DoNotOptimize(trace.tasks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}
BENCHMARK(BM_GenerateTrace)->Arg(1000)->Arg(10000);

void BM_MillenniumTrace(benchmark::State& state) {
  mbts::WorkloadSpec spec = mbts::presets::millennium_mix(4.0, 5000);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    const mbts::Trace trace =
        mbts::generate_trace(spec, mbts::SeedSequence(3), rep++);
    benchmark::DoNotOptimize(trace.tasks.data());
  }
  state.SetItemsProcessed(5000 * state.iterations());
}
BENCHMARK(BM_MillenniumTrace);

}  // namespace

MBTS_BENCHMARK_MAIN()
