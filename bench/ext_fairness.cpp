// Extension: per-value-class fairness under value-based scheduling. See src/experiments/ablations.hpp.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_fairness",
                              "Extension: per-value-class fairness under value-based scheduling",
                              mbts::extension_fairness,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
