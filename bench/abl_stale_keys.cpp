// Ablation: stale (enqueue-time) vs fresh priorities. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "abl_stale_keys",
                              "Ablation: stale (enqueue-time) vs fresh priorities",
                              mbts::ablation_stale_keys,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
