// Extension: gang-scheduled multi-processor tasks with backfilling — the
// general model the paper simplifies to width 1 (§4). See
// src/experiments/ablations.hpp.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "ext_gang",
      "Extension: gang scheduling and backfill vs task width",
      mbts::extension_gang, /*default_jobs=*/2000, /*default_reps=*/3);
}
