// Reproduces Figure 6: average yield rate vs load factor 0.5–4.5 under
// slack-threshold admission control (threshold 180) for FirstReward alpha in
// {0, 0.2, 0.4, 0.6, 0.8, 1}, against FirstPrice without admission control.
// Unbounded penalties, value skew 3, decay skew 5, discount 1%.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "fig6_admission_load",
      "Figure 6: admission control yield rate vs load factor",
      mbts::figure6);
}
