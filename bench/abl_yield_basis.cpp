// Ablation: ranking-yield basis (completion vs now). See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "abl_yield_basis",
                              "Ablation: ranking-yield basis (completion vs now)",
                              mbts::ablation_yield_basis,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
