// Reproduces Figure 4: FirstReward vs FirstPrice as alpha sweeps [0, 0.9]
// with penalties bounded at zero, for decay-skew ratios {3, 5, 7}
// (value skew 2, discount rate 1%, load factor 1).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "fig4_alpha_bounded",
      "Figure 4: FirstReward improvement over FirstPrice, bounded penalties",
      mbts::figure4);
}
