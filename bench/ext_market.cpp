// Extension: multi-site market negotiation. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_market",
                              "Extension: multi-site market negotiation",
                              mbts::extension_market,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
