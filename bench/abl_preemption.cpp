// Ablation: preemption on/off for FirstReward vs FirstPrice. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "abl_preemption",
                              "Ablation: preemption on/off for FirstReward vs FirstPrice",
                              mbts::ablation_preemption,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
