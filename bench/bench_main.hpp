// Shared main() for the microbenchmarks: standard google-benchmark startup
// plus an "mbts_build_type" custom context key reporting how the *app* code
// was compiled. The stock "library_build_type" context only describes the
// google-benchmark library itself — a debug libbenchmark makes every JSON
// say "debug" even for a -O3 app build, which is exactly how a debug-build
// baseline once got committed. tools/bench_*.sh gate on this key instead.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <thread>

namespace mbts_bench {

inline const char* build_type() {
#if defined(__OPTIMIZE__) && defined(NDEBUG)
  return "release";
#elif defined(__OPTIMIZE__)
  return "optimized-with-asserts";
#else
  return "debug";
#endif
}

}  // namespace mbts_bench

// "mbts_nproc" records the host's core count next to the numbers: the
// sharded sweeps scale with it, so tools/bench_compare.py warns when two
// JSONs disagree on it instead of calling a host change a regression.
#define MBTS_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                    \
    benchmark::AddCustomContext("mbts_build_type",                     \
                                mbts_bench::build_type());             \
    benchmark::AddCustomContext(                                       \
        "mbts_nproc",                                                  \
        std::to_string(std::thread::hardware_concurrency()));          \
    benchmark::Initialize(&argc, argv);                                \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    benchmark::RunSpecifiedBenchmarks();                               \
    benchmark::Shutdown();                                             \
    return 0;                                                          \
  }
