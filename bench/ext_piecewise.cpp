// Extension: deadline-cliff (variable-rate) value functions. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_piecewise",
                              "Extension: deadline-cliff (variable-rate) value functions",
                              mbts::extension_piecewise,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
