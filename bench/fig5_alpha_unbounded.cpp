// Reproduces Figure 5: as Figure 4 but with unbounded penalties — the
// regime where considering cost (low alpha) dominates considering gains.
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "fig5_alpha_unbounded",
      "Figure 5: FirstReward improvement over FirstPrice, unbounded penalties",
      mbts::figure5);
}
