// Microbenchmarks for candidate-schedule projection and end-to-end
// single-site simulation throughput (tasks scheduled per second).
#include <benchmark/benchmark.h>

#include "core/schedule.hpp"
#include "experiments/runner.hpp"
#include "workload/presets.hpp"

namespace {

void BM_ListSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(5);
  std::vector<mbts::PendingItem> ordered(n);
  for (std::size_t i = 0; i < n; ++i)
    ordered[i] = {i, rng.uniform(1.0, 200.0)};
  std::vector<double> proc_free(16, 0.0);
  for (auto _ : state) {
    auto entries = mbts::list_schedule(proc_free, ordered);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ListSchedule)->Range(64, 1 << 14);

void run_site(benchmark::State& state, const mbts::PolicySpec& policy,
              bool admission) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  mbts::WorkloadSpec spec = mbts::presets::admission_mix(1.5, jobs);
  mbts::Xoshiro256 rng(17);
  const mbts::Trace trace = mbts::generate_trace(spec, rng);
  mbts::SchedulerConfig config;
  config.processors = mbts::presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;
  std::optional<mbts::SlackAdmissionConfig> admit;
  if (admission) admit = mbts::SlackAdmissionConfig{180.0, false};
  for (auto _ : state) {
    auto stats = mbts::run_single_site(trace, config, policy, admit);
    benchmark::DoNotOptimize(stats.total_yield);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}

void BM_SiteFirstPrice(benchmark::State& state) {
  run_site(state, mbts::PolicySpec::first_price(), false);
}
void BM_SiteFirstRewardAdmission(benchmark::State& state) {
  run_site(state, mbts::PolicySpec::first_reward(0.2), true);
}

BENCHMARK(BM_SiteFirstPrice)->Arg(500)->Arg(2000)->Arg(5000);
BENCHMARK(BM_SiteFirstRewardAdmission)->Arg(500)->Arg(2000)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
