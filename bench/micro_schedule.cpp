// Microbenchmarks for candidate-schedule projection and end-to-end
// single-site simulation throughput (tasks scheduled per second).
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "core/schedule.hpp"
#include "experiments/runner.hpp"
#include "workload/presets.hpp"

namespace {

void BM_ListSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(5);
  std::vector<mbts::PendingItem> ordered(n);
  for (std::size_t i = 0; i < n; ++i)
    ordered[i] = {i, rng.uniform(1.0, 200.0)};
  std::vector<double> proc_free(16, 0.0);
  for (auto _ : state) {
    auto entries = mbts::list_schedule(proc_free, ordered);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ListSchedule)->Range(64, 1 << 14);

void run_site(benchmark::State& state, const mbts::PolicySpec& policy,
              bool admission) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  mbts::WorkloadSpec spec = mbts::presets::admission_mix(1.5, jobs);
  mbts::Xoshiro256 rng(17);
  const mbts::Trace trace = mbts::generate_trace(spec, rng);
  mbts::SchedulerConfig config;
  config.processors = mbts::presets::kProcessors;
  config.preemption = true;
  config.discount_rate = 0.01;
  std::optional<mbts::SlackAdmissionConfig> admit;
  if (admission) admit = mbts::SlackAdmissionConfig{180.0, false};
  for (auto _ : state) {
    auto stats = mbts::run_single_site(trace, config, policy, admit);
    benchmark::DoNotOptimize(stats.total_yield);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}

void BM_SiteFirstPrice(benchmark::State& state) {
  run_site(state, mbts::PolicySpec::first_price(), false);
}
void BM_SiteFirstRewardAdmission(benchmark::State& state) {
  run_site(state, mbts::PolicySpec::first_reward(0.2), true);
}

BENCHMARK(BM_SiteFirstPrice)->Arg(500)->Arg(2000)->Arg(5000);
BENCHMARK(BM_SiteFirstRewardAdmission)->Arg(500)->Arg(2000)->Arg(5000);

// Large-mix dispatch: every job arrives in one burst, so the pending queue
// holds ~n tasks while the site drains at capacity. Each completion triggers
// a dispatch that scores the whole backlog — the hot path the incremental
// mix and O(1) queue bookkeeping target. Tasks are unbounded (Eq. 5 cost
// path) so the measured cost is mix upkeep + scoring, not the inherently
// O(n) per-task Eq. 4 sum.
void BM_DispatchBacklog(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(23);
  std::vector<mbts::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    mbts::Task& t = tasks[i];
    t.id = static_cast<mbts::TaskId>(i + 1);
    t.arrival = 0.0;
    t.runtime = rng.uniform(1.0, 10.0);
    t.value = mbts::ValueFunction::unbounded(rng.uniform(10.0, 100.0),
                                             rng.uniform(0.001, 0.05));
  }
  mbts::SchedulerConfig config;
  config.processors = 64;
  config.preemption = true;
  config.discount_rate = 0.01;
  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    mbts::SimEngine engine;
    mbts::SiteScheduler site(
        engine, config, mbts::make_policy(mbts::PolicySpec::first_reward(0.3)),
        std::make_unique<mbts::AcceptAllAdmission>());
    site.inject(tasks);
    engine.run();
    const auto stats = site.stats();
    dispatches += stats.dispatches;
    benchmark::DoNotOptimize(stats.total_yield);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatches));
  state.counters["pending"] = static_cast<double>(n);
}
BENCHMARK(BM_DispatchBacklog)->Unit(benchmark::kMillisecond)->Arg(1000)->Arg(10000);

// The SoA-kernel headline: a standing backlog of n pending tasks drains
// for a fixed window, so one iteration performs a few hundred full-queue
// rescores at constant pending depth (unlike BM_DispatchBacklog, which
// drains to empty and so can't reach 100k tasks in reasonable time).
// arg1 toggles ScoreKernelMode: 0 = scalar AoS cache path, 1 = the batch
// kernels (scheduler default) — committed side by side in
// BENCH_dispatch.json so the kernel speedup is part of the perf record.
void BM_DispatchBurst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool kernels = state.range(1) != 0;
  mbts::Xoshiro256 rng(23);
  std::vector<mbts::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    mbts::Task& t = tasks[i];
    t.id = static_cast<mbts::TaskId>(i + 1);
    t.arrival = 0.0;
    t.runtime = rng.uniform(1.0, 10.0);
    t.value = mbts::ValueFunction::unbounded(rng.uniform(10.0, 100.0),
                                             rng.uniform(0.001, 0.05));
  }
  mbts::SchedulerConfig config;
  config.processors = 64;
  config.preemption = true;
  config.discount_rate = 0.01;
  config.score_kernels = kernels ? mbts::ScoreKernelMode::kExact
                                 : mbts::ScoreKernelMode::kOff;
  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    mbts::SimEngine engine;
    mbts::SiteScheduler site(
        engine, config, mbts::make_policy(mbts::PolicySpec::first_reward(0.3)),
        std::make_unique<mbts::AcceptAllAdmission>());
    site.preload(tasks);
    engine.run_until(5.0);
    const auto stats = site.stats();
    dispatches += stats.dispatches;
    benchmark::DoNotOptimize(stats.total_yield);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(dispatches));
  state.counters["pending"] = static_cast<double>(n);
  state.counters["kernels"] = kernels ? 1.0 : 0.0;
}
BENCHMARK(BM_DispatchBurst)
    ->Unit(benchmark::kMillisecond)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

// Quote throughput against a standing backlog of n pending tasks: the
// market-probe hot path. Each quote rescores the whole queue, repairs the
// rank order, and runs the candidate-schedule projection; SlackAdmission
// reads the ranked suffix, so the full pending_decay cache is built too.
void BM_QuoteBacklog(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mbts::Xoshiro256 rng(31);
  std::vector<mbts::Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    mbts::Task& t = tasks[i];
    t.id = static_cast<mbts::TaskId>(i + 1);
    t.arrival = 0.0;
    t.runtime = rng.uniform(1.0, 10.0);
    t.value = mbts::ValueFunction::unbounded(rng.uniform(10.0, 100.0),
                                             rng.uniform(0.001, 0.05));
  }
  mbts::Task probe;
  probe.id = static_cast<mbts::TaskId>(n + 1);
  probe.arrival = 0.0;
  probe.runtime = 5.0;
  probe.value = mbts::ValueFunction::unbounded(50.0, 0.01);
  mbts::SchedulerConfig config;
  config.processors = 64;
  config.preemption = true;
  config.discount_rate = 0.01;
  mbts::SimEngine engine;
  mbts::SiteScheduler site(
      engine, config, mbts::make_policy(mbts::PolicySpec::first_reward(0.3)),
      std::make_unique<mbts::SlackAdmission>(
          mbts::SlackAdmissionConfig{0.0, false}));
  site.preload(tasks);
  engine.run_until(0.0);  // fire the coalesced dispatch; nothing completes
  std::uint64_t quotes = 0;
  for (auto _ : state) {
    const auto decision = site.quote(probe);
    ++quotes;
    benchmark::DoNotOptimize(decision.expected_completion);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(quotes));
  state.counters["pending"] = static_cast<double>(site.pending_count());
}
BENCHMARK(BM_QuoteBacklog)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

}  // namespace

MBTS_BENCHMARK_MAIN()
