// Extension: bid-scaling incentives under bid-price vs second-price. See src/experiments/ablations.hpp.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_truthfulness",
                              "Extension: bid-scaling incentives under bid-price vs second-price",
                              mbts::extension_truthfulness,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
