// Microbenchmarks for policy scoring: the per-dispatch cost claims of §5.2 —
// the unbounded (Eq. 5) cost path is O(1) per task from the maintained
// aggregate, while the bounded (Eq. 4) path is O(n) per task.
#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "workload/generator.hpp"
#include "workload/presets.hpp"

namespace {

struct Fixture {
  mbts::Trace trace;
  std::vector<mbts::CompetitorInfo> infos;
  mbts::MixView mix;

  Fixture(std::size_t n, mbts::PenaltyModel penalty) {
    mbts::WorkloadSpec spec = mbts::presets::decay_skew_mix(5.0, penalty, n);
    mbts::Xoshiro256 rng(123);
    trace = mbts::generate_trace(spec, rng);
    const double now = trace.tasks.back().arrival;
    bool any_bounded = false;
    for (const mbts::Task& t : trace.tasks) {
      mbts::CompetitorInfo info;
      info.id = t.id;
      info.decay = t.value.decay();
      if (t.value.bounded() && info.decay > 0.0) {
        any_bounded = true;
        info.time_to_expire = std::max(0.0, t.expire_time() - now);
      }
      infos.push_back(info);
    }
    double total = 0.0;
    for (const auto& c : infos)
      if (c.time_to_expire > 0.0) total += c.decay;
    mix.now = now;
    mix.discount_rate = 0.01;
    mix.total_live_decay = total;
    mix.competitors = infos;
    mix.any_bounded = any_bounded;
  }
};

void score_all(benchmark::State& state, mbts::PenaltyModel penalty,
               const mbts::PolicySpec& spec) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture fixture(n, penalty);
  const auto policy = mbts::make_policy(spec);
  for (auto _ : state) {
    double sum = 0.0;
    for (const mbts::Task& t : fixture.trace.tasks)
      sum += policy->priority(t, t.runtime, fixture.mix);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}

void BM_FirstPrice(benchmark::State& state) {
  score_all(state, mbts::PenaltyModel::kUnbounded,
            mbts::PolicySpec::first_price());
}
void BM_FirstRewardUnbounded(benchmark::State& state) {
  score_all(state, mbts::PenaltyModel::kUnbounded,
            mbts::PolicySpec::first_reward(0.3));
}
void BM_FirstRewardBounded(benchmark::State& state) {
  score_all(state, mbts::PenaltyModel::kBoundedAtZero,
            mbts::PolicySpec::first_reward(0.3));
}

BENCHMARK(BM_FirstPrice)->Range(64, 4096);
BENCHMARK(BM_FirstRewardUnbounded)->Range(64, 4096);
// Bounded cost is O(n) per task — expect quadratic total growth here.
BENCHMARK(BM_FirstRewardBounded)->Range(64, 1024);

}  // namespace

MBTS_BENCHMARK_MAIN()
