// Extension: deterministic fault injection. See src/experiments/ablations.hpp for the experiment design.
#include "experiments/ablations.hpp"
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(argc, argv, "ext_faults",
                              "Extension: deterministic fault injection",
                              mbts::extension_faults,
                              /*default_jobs=*/2000, /*default_reps=*/3);
}
