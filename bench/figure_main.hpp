// Shared main() for the figure-reproduction benches: parses the standard
// experiment flags, runs the figure, prints the paper-style table, and
// writes the long-format CSV next to the binary (or to --out).
#pragma once

#include <filesystem>
#include <functional>
#include <iostream>

#include "experiments/figures.hpp"
#include "util/cli.hpp"

namespace mbts::benchmain {

inline int run(int argc, const char* const* argv, const std::string& name,
               const std::string& description,
               const std::function<FigureResult(const ExperimentOptions&)>&
                   figure_fn,
               std::size_t default_jobs = 5000,
               std::size_t default_reps = 3) {
  CliParser cli(name, description);
  cli.add_flag("jobs", std::to_string(default_jobs),
               "tasks per generated trace");
  cli.add_flag("reps", std::to_string(default_reps),
               "replications (independent seeds) per point");
  cli.add_flag("seed", "42", "master seed");
  cli.add_flag("threads", "0", "worker threads (0 = hardware)");
  cli.add_flag("out", "bench_out/" + name + ".csv",
               "CSV output path (empty to skip)");
  if (!cli.parse(argc, argv)) return 1;

  ExperimentOptions options;
  options.num_jobs = static_cast<std::size_t>(cli.get_uint("jobs"));
  options.replications = static_cast<std::size_t>(cli.get_uint("reps"));
  options.seed = cli.get_uint("seed");
  options.threads = static_cast<std::size_t>(cli.get_uint("threads"));

  const FigureResult figure = figure_fn(options);
  print_figure(figure, std::cout);
  const std::string out = cli.get_string("out");
  if (!out.empty()) {
    const std::filesystem::path path(out);
    if (path.has_parent_path())
      std::filesystem::create_directories(path.parent_path());
    save_figure_csv(figure, out);
    std::cout << "wrote " << out << '\n';
  }
  return 0;
}

}  // namespace mbts::benchmain
