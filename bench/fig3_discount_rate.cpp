// Reproduces Figure 3: Present Value vs FirstPrice as the discount rate
// sweeps 0.001%–10%, for value-skew ratios {1, 1.5, 2.15, 4, 9} on the
// Millennium task mix (normal batched arrivals, uniform decay, penalties
// bounded at zero, load factor 1, preemption enabled).
#include "figure_main.hpp"

int main(int argc, char** argv) {
  return mbts::benchmain::run(
      argc, argv, "fig3_discount_rate",
      "Figure 3: PV yield improvement over FirstPrice vs discount rate",
      mbts::figure3);
}
