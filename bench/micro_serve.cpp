// Serve-path throughput: lockstep vs pipelined sessions against a real
// ServeServer + BrokerService on a loopback ephemeral port.
//
// The driver is a single thread multiplexing all client connections with
// poll(2) — on the small CI hosts this repo benches on (often 1 core),
// thread-per-connection drivers measure the scheduler, not the server. Each
// case drives a fixed total number of bids split across `conns`
// connections; lockstep keeps one untagged bid in flight per connection
// (the pre-tag wire behavior), pipelined keeps a 32-deep tagged window.
// Reported: bids/sec (items_per_second) and client-observed p50/p99 quote
// latency. The timed region is the drive phase only — server setup and the
// drain are excluded via manual timing.
//
// The interesting comparison is at 64+ connections: pipelining amortizes
// the per-bid syscall + wakeup round trips (reactor and engine pop runs,
// replies coalesce into fewer segments), which is where the >= 2x over
// lockstep comes from; negotiation work itself is identical.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "serve/broker_service.hpp"
#include "serve/pacing_clock.hpp"
#include "serve/preset.hpp"
#include "serve/server.hpp"
#include "workload/presets.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kTotalBids = 4096;

/// Minimal one-site market: the bench measures the serve transport, so the
/// negotiation behind it is made as cheap as possible — one quote per bid,
/// no slack-admission pass. With the full Fig. 1 trio the market itself
/// dominates every mode and the front-end comparison measures nothing.
mbts::MarketConfig bench_market() {
  mbts::MarketConfig config;
  config.rng_seed = 11;
  mbts::SiteAgentConfig site;
  site.id = 0;
  site.name = "bench";
  site.scheduler.processors = 8;
  site.policy = mbts::PolicySpec::swpt();
  config.sites.push_back(site);
  return config;
}

struct DriverConn {
  int fd = -1;
  std::string rbuf;
  std::string wbuf;
  std::size_t woff = 0;
  std::size_t next = 0;     // next bid index to enqueue
  std::size_t done = 0;     // replies received
  std::size_t inflight = 0;
  std::vector<Clock::time_point> sent;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

std::string bid_line(const mbts::Task& task, std::size_t tag_index,
                     bool tagged) {
  char bound[64] = "inf";
  if (task.value.bounded())
    std::snprintf(bound, sizeof(bound), "%.17g", task.value.penalty_bound());
  char out[320];
  if (tagged) {
    std::snprintf(out, sizeof(out), "BID t%zu %.17g %.17g %.17g %s\n",
                  tag_index, task.runtime, task.value.max_value(),
                  task.value.decay(), bound);
  } else {
    std::snprintf(out, sizeof(out), "BID %.17g %.17g %.17g %s\n",
                  task.runtime, task.value.max_value(), task.value.decay(),
                  bound);
  }
  return out;
}

/// Fills the connection's window, then flushes what the socket will take.
void pump_out(DriverConn& conn, const std::vector<mbts::Task>& bids,
              std::size_t per_conn, std::size_t window, bool tagged) {
  while (conn.inflight < window && conn.next < per_conn) {
    conn.sent[conn.next] = Clock::now();
    conn.wbuf += bid_line(bids[conn.next % bids.size()], conn.next, tagged);
    ++conn.next;
    ++conn.inflight;
  }
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN: poll for POLLOUT
  }
  if (conn.woff == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  }
}

/// Consumes complete reply lines; records latency per answered bid.
void pump_in(DriverConn& conn, bool tagged,
             std::vector<double>* latencies_ms) {
  std::size_t pos = 0;
  for (;;) {
    const std::size_t newline = conn.rbuf.find('\n', pos);
    if (newline == std::string::npos) break;
    const std::string line = conn.rbuf.substr(pos, newline - pos);
    pos = newline + 1;
    std::size_t index = conn.done;  // lockstep: replies arrive in order
    if (tagged) {
      const std::size_t a = line.find(" t");
      index = a == std::string::npos
                  ? conn.done
                  : std::strtoul(line.c_str() + a + 2, nullptr, 10);
    }
    if (index < conn.sent.size())
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    conn.sent[index])
              .count());
    ++conn.done;
    --conn.inflight;
  }
  if (pos > 0) conn.rbuf.erase(0, pos);
}

/// One full drive: `total` bids over `conns` connections with `window` in
/// flight each (1 + untagged = lockstep). Returns the drive wall seconds.
double drive(std::uint16_t port, const std::vector<mbts::Task>& bids,
             std::size_t conns, std::size_t window,
             std::vector<double>* latencies_ms) {
  const bool tagged = window > 1;
  const std::size_t per_conn = kTotalBids / conns;
  std::vector<DriverConn> clients(conns);
  for (DriverConn& conn : clients) {
    conn.fd = connect_loopback(port);
    if (conn.fd < 0) return -1.0;
    conn.sent.resize(per_conn);
  }

  const auto begin = Clock::now();
  std::size_t total_done = 0;
  std::vector<pollfd> fds(conns);
  while (total_done < per_conn * conns) {
    for (std::size_t i = 0; i < conns; ++i) {
      pump_out(clients[i], bids, per_conn, window, tagged);
      fds[i].fd = clients[i].fd;
      fds[i].events = 0;
      if (clients[i].done < per_conn) fds[i].events |= POLLIN;
      if (clients[i].woff < clients[i].wbuf.size())
        fds[i].events |= POLLOUT;
      fds[i].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), 1000) < 0 && errno != EINTR)
      return -1.0;
    for (std::size_t i = 0; i < conns; ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      char chunk[16384];
      const ssize_t n = ::recv(clients[i].fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
        return -1.0;  // server dropped us: the bench config is wrong
      }
      const std::size_t before = clients[i].done;
      clients[i].rbuf.append(chunk, static_cast<std::size_t>(n));
      pump_in(clients[i], tagged, latencies_ms);
      total_done += clients[i].done - before;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  for (DriverConn& conn : clients) ::close(conn.fd);
  return seconds;
}

void run_serve_case(benchmark::State& state, std::size_t window) {
  using namespace mbts;
  const std::size_t conns = static_cast<std::size_t>(state.range(0));

  // Serve-rate workload: short runtimes (mean 0.1 sim-units) and urgent
  // decay keep the live site backlog shallow at any bid rate the transport
  // can reach. The batch presets (mean runtime 100) would put the live
  // market far over capacity at these rates — every quote then walks a
  // deep backlog and the engine, not the front end, is what gets measured.
  const Trace trace = [&] {
    WorkloadSpec spec;
    spec.num_jobs = 512;
    spec.runtime = DistSpec::exponential(0.1);
    spec.uniform_decay = true;
    spec.decay.low_mean = 2.0;
    Xoshiro256 rng = SeedSequence(7).stream(0x7A5C);
    return generate_trace(spec, rng);
  }();

  std::vector<double> latencies_ms;
  for (auto _ : state) {
    serve::ServeConfig serve_config;
    serve_config.market = bench_market();
    // Deep enough that nothing answers BUSY: the throughput number should
    // count negotiations, not cheap rejections.
    serve_config.queue_capacity = 8192;
    WallPacingClock clock(200.0);
    serve::BrokerService service(serve_config, &clock);
    service.start();
    serve::ServerConfig server_config;
    server_config.session_threads = 2;
    serve::ServeServer server(server_config, &service);
    server.start();

    latencies_ms.clear();
    latencies_ms.reserve(kTotalBids);
    const double seconds =
        drive(server.port(), trace.tasks, conns, window, &latencies_ms);
    if (seconds < 0.0) {
      state.SkipWithError("drive failed (connection lost)");
      server.stop();
      service.drain();
      return;
    }
    state.SetIterationTime(seconds);

    server.stop();
    service.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTotalBids));
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    state.counters["p50_ms"] = latencies_ms[latencies_ms.size() / 2];
    state.counters["p99_ms"] = latencies_ms[latencies_ms.size() * 99 / 100];
  }
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["window"] = static_cast<double>(window);
}

void BM_ServeLockstep(benchmark::State& state) { run_serve_case(state, 1); }
void BM_ServePipelined(benchmark::State& state) { run_serve_case(state, 32); }

/// No-transport ceiling: the same workload submitted straight into the
/// BrokerService with a 64-deep window. The distance between this and
/// BM_ServePipelined is what the socket front end costs.
void BM_EngineOnly(benchmark::State& state) {
  using namespace mbts;
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const Trace trace = [&] {
    WorkloadSpec spec;
    spec.num_jobs = 512;
    spec.runtime = DistSpec::exponential(0.1);
    spec.uniform_decay = true;
    spec.decay.low_mean = 2.0;
    Xoshiro256 rng = SeedSequence(7).stream(0x7A5C);
    return generate_trace(spec, rng);
  }();
  for (auto _ : state) {
    serve::ServeConfig serve_config;
    serve_config.market = bench_market();
    serve_config.queue_capacity = 8192;
    WallPacingClock clock(200.0);
    serve::BrokerService service(serve_config, &clock);
    service.start();
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    const auto on_done = [&](const serve::Outcome&) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    };
    const auto begin = Clock::now();
    std::size_t next = 0;
    while (next < kTotalBids) {
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return next - done < window; });
      }
      service.submit(trace.tasks[next % trace.tasks.size()], on_done);
      ++next;
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done == kTotalBids; });
    }
    state.SetIterationTime(
        std::chrono::duration<double>(Clock::now() - begin).count());
    service.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTotalBids));
}
BENCHMARK(BM_EngineOnly)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK(BM_ServeLockstep)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServePipelined)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

MBTS_BENCHMARK_MAIN()
